// Submodel reproduces scenario 2 (Fig. 5(b)) at example scale: a TSV array
// embedded at five different locations of a 2.5D chiplet (substrate +
// interposer + die). A coarse solve of the TSV-free package provides the
// sub-model boundary displacements; two rings of dummy silicon blocks keep
// the boundary away from the TSVs (§4.4 of the paper) — the workload behind
// Table 2.
package main

import (
	"fmt"
	"log"

	morestress "repro"
)

func main() {
	cfg := morestress.DefaultConfig(15)
	model, err := morestress.BuildModelWithDummy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local stages (TSV + dummy blocks): %v\n", model.LocalStageTime())

	// Coarse package warpage solve — shared by all five locations.
	pkg, err := morestress.SolvePackage(morestress.DefaultPackage(),
		morestress.DefaultPackageResolution(), -250, morestress.SolverOptions{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coarse chiplet solve: %v (%d iterations)\n\n",
		pkg.Coarse.SolveTime, pkg.Coarse.Stats.Iterations)

	const gs = 16
	fmt.Printf("%-6s %12s %12s %12s %12s\n", "loc", "global", "max vM", "mean vM", "vs ref")
	for _, loc := range morestress.Locations {
		spec := morestress.EmbeddedSpec{
			Rows: 5, Cols: 5, DummyRing: 2, Location: loc,
			GridSamples: gs,
		}
		res, err := model.SolveEmbedded(pkg, spec)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := morestress.ReferenceEmbedded(cfg, pkg, spec, gs, morestress.SolverOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %12v %9.1f MPa %9.1f MPa %11.2f%%\n",
			loc.String(), res.GlobalTime.Round(1e6), res.VM.Max(), res.VM.Mean(),
			100*morestress.NormalizedMAE(res.VM, ref.VM))
	}
	fmt.Println("\nloc3 (die corner) and loc5 (interposer corner) sit in the sharpest")
	fmt.Println("background-stress gradients; sub-modeling keeps MORE-Stress accurate there.")
}
