// Quickstart: build a MORE-Stress reduced-order model for the paper's TSV
// (h = 50 µm, d = 5 µm, t = 0.5 µm, p = 15 µm, Cu/SiO2/Si, ΔT = −250 °C),
// solve a 10×10 clamped array, and print stress statistics — the minimal
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	morestress "repro"
)

func main() {
	// One-shot local stage: reduced-order model of the unit block.
	cfg := morestress.DefaultConfig(15) // pitch in µm
	model, err := morestress.BuildModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local stage: %v (n = %d element DoFs per block)\n",
		model.LocalStageTime(), model.ElementDoFs())

	// Global stage: any array size / thermal load reuses the same model.
	res, err := model.SolveArray(morestress.ArraySpec{
		Rows: 10, Cols: 10,
		DeltaT:      -250, // reflow 275 °C → room temperature 25 °C
		GridSamples: 50,   // von Mises samples per block edge on the mid-plane
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global stage: %v (%d global DoFs, %d GMRES iterations)\n",
		res.GlobalTime, res.GlobalDoFs, res.Stats.Iterations)
	fmt.Printf("mid-plane von Mises: max %.1f MPa, mean %.1f MPa\n",
		res.VM.Max(), res.VM.Mean())

	// The von Mises peak sits at the via/liner interface; print a profile
	// across the center block.
	gs := 50
	row := (10*gs)/2 + gs/2
	fmt.Println("\nstress profile across the center block (MPa):")
	for i := 0; i < gs; i += 5 {
		fmt.Printf("  x = %4.1f um: %7.1f\n",
			(float64(i)+0.5)*15/float64(gs), res.VM.At(5*gs+i, row))
	}
}
