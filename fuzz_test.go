package morestress

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// fuzzSaved lazily builds one cheap model with a dummy ROM and serializes
// it, shared across fuzz iterations (the local stage is too slow to run per
// input).
var fuzzSaved struct {
	once          sync.Once
	full, tsvOnly []byte
	err           error
}

func fuzzSavedModel() ([]byte, []byte, error) {
	s := &fuzzSaved
	s.once.Do(func() {
		cfg := testConfig(15)
		cfg.Nodes = [3]int{3, 3, 3}
		m, err := BuildModelWithDummy(cfg)
		if err != nil {
			s.err = err
			return
		}
		var full, tsvOnly bytes.Buffer
		if err := m.Save(&full); err != nil {
			s.err = err
			return
		}
		if err := m.TSV.Save(&tsvOnly); err != nil {
			s.err = err
			return
		}
		s.full, s.tsvOnly = full.Bytes(), tsvOnly.Bytes()
	})
	return s.full, s.tsvOnly, s.err
}

// FuzzLoadModelStream hardens LoadModel's two-record gob stream against
// arbitrary bytes: no input may panic, a clean end of stream after the TSV
// record means "no dummy" (never an error), and any model that does load
// must be structurally consistent. The seeded corpus covers the regression
// territory of the PR-1 error-swallowing fix: mid-dummy truncations must
// surface an error instead of silently dropping the dummy.
func FuzzLoadModelStream(f *testing.F) {
	full, tsvOnly, err := fuzzSavedModel()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(tsvOnly)
	f.Add(full[:len(tsvOnly)+(len(full)-len(tsvOnly))/2]) // mid-dummy cut
	f.Add(tsvOnly[:len(tsvOnly)/2])                       // mid-TSV cut
	f.Add(append(append([]byte(nil), tsvOnly...), "trailing junk"...))
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just must not panic
		}
		if m == nil || m.TSV == nil {
			t.Fatal("LoadModel returned nil model without error")
		}
		if m.TSV.N <= 0 || len(m.TSV.Basis) != m.TSV.N || len(m.TSV.Belem) != m.TSV.N {
			t.Fatalf("loaded TSV ROM inconsistent: N=%d basis=%d belem=%d",
				m.TSV.N, len(m.TSV.Basis), len(m.TSV.Belem))
		}
		if m.Dummy != nil && (m.Dummy.N <= 0 || len(m.Dummy.Basis) != m.Dummy.N) {
			t.Fatalf("loaded dummy ROM inconsistent: N=%d basis=%d", m.Dummy.N, len(m.Dummy.Basis))
		}
		// Round-trip: anything that loads must save and load again.
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("re-save of loaded model failed: %v", err)
		}
		if _, err := LoadModel(bytes.NewReader(buf.Bytes())); err != nil && err != io.EOF {
			t.Fatalf("re-load of re-saved model failed: %v", err)
		}
	})
}
