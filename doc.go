// Package morestress is a Go implementation of MORE-Stress, the model-order-
// reduction algorithm for efficient thermal stress simulation of TSV arrays
// in 2.5D/3D ICs (Zhu et al., DATE 2025, arXiv:2411.12690).
//
// Thermomechanical stress in 2.5D/3D integrated circuits arises from the
// mismatch of thermal expansion coefficients between copper TSVs, their
// dielectric liners, and the silicon substrate under the thermal load between
// processing and room temperature. Full finite-element analysis of a large
// TSV array is prohibitively expensive because the fine via geometry forces a
// fine mesh over a large domain. MORE-Stress exploits the periodicity of the
// array:
//
//   - A one-shot local stage (BuildModel) meshes a single p×p×h unit block,
//     places equally spaced Lagrange interpolation nodes on its surface, and
//     solves one Dirichlet problem per surface-node displacement component
//     (plus one thermal problem) with a single sparse Cholesky factorization.
//     The solutions are the local basis functions; projecting the fine
//     operator onto them yields a small dense element stiffness and load.
//
//   - A global stage (Model.SolveArray) treats every unit block as an
//     abstract finite element whose DoFs are the shared surface-node
//     displacements, assembles a sparse global system for an arbitrary
//     Bx×By array, applies boundary conditions by lifting, solves with
//     GMRES, and reconstructs per-block displacement and stress fields from
//     the basis.
//
//   - Sub-modeling (Model.SolveEmbedded) embeds an array anywhere in a
//     package: a coarse package solve provides displacement boundary
//     conditions for the array sub-model, with rings of pure-silicon "dummy"
//     blocks keeping the boundary away from the region of interest.
//
// Because a built ROM is reusable across arbitrary array sizes, thermal
// loads, and placements (§4.1), the package also provides a serving layer:
//
//   - An Engine (NewEngine / Engine.BatchSolve) schedules scenario Jobs on a
//     bounded worker pool over a content-addressed ROM cache
//     (internal/romcache): jobs with the same unit-cell configuration share
//     one ROM, concurrent requests for a missing ROM run the local stage
//     exactly once (singleflight), recently used models stay in an in-memory
//     LRU admitted against a byte budget (each model's MemoryBytes, so one
//     large lattice cannot evict a working set of small ones), and built
//     models optionally spill to disk in the Save/LoadModel gob format.
//     Repeated SolveDirect jobs on the same lattice additionally share a
//     sparse Cholesky factorization, so ΔT sweeps factor once.
//
//   - The global stage itself scales across scenarios: the engine assembles
//     each lattice's reduced global system once (array.Assembly, shared by
//     every solver kind) and each preconditioner at most once per lattice,
//     kind, and factor ordering (cached on the assembly — the IC0 factor
//     is no longer rebuilt per solve), the iterative solvers default to
//     auto-selected preconditioning (block-Jacobi-3 for small lattices,
//     amortized IC0 above solver.AutoIC0Threshold DoFs;
//     SolverOptions.Precond overrides) with level-scheduled IC0 triangular
//     solves, an auto-selected symmetric factor ordering
//     (SolverOptions.Ordering: multicolor when the natural-order
//     dependency levels are too narrow to fan out, natural otherwise) and
//     an allocation-free PCG hot loop, and uniform-ΔT sweeps are chained
//     in ΔT order so each solve warm-starts from its neighbor's solution,
//     falling back to a cold solve on divergence. EngineStats and
//     Solution/SolverStats surface assemblies and preconditioners reused,
//     solves per ordering, warm-start hit rate, and iteration counts. See
//     docs/SOLVER_TUNING.md for guidance and measurements.
//
//   - An asynchronous job queue (internal/jobqueue) turns the engine into a
//     submit-and-poll service: a job of many scenarios gets an ID
//     immediately and moves through pending → running → done or failed
//     (cancellable from either non-terminal state), with per-scenario
//     progress events, bounded-FIFO backpressure, cooperative cancellation,
//     and TTL garbage collection of finished results; see the jobqueue
//     package documentation for the lifecycle diagram.
//
//   - cmd/serve exposes both over HTTP — synchronous POST /solve and
//     POST /batch, asynchronous POST /jobs + GET /jobs/{id} (poll) +
//     GET /jobs/{id}/events (SSE) + DELETE /jobs/{id} (cancel), and
//     GET /stats / GET /healthz — for many concurrent clients;
//     examples/batch is the library-level walkthrough of both entry
//     points.
//
// The package also provides the two baselines evaluated in the paper: a
// conventional full-resolution FEM reference (ReferenceArray — the ground
// truth played by ANSYS in the paper) and the linear superposition method
// (BuildSuperposition), plus the error metrics, benchmark harness, and
// example scenarios that regenerate every table and figure of the paper's
// evaluation.
//
// The docs/ directory maps the system: docs/ARCHITECTURE.md is the layer
// map (mesh → fem → rom → array → engine → jobqueue → serve) and cache
// inventory; docs/SOLVER_TUNING.md covers global-stage solver selection,
// preconditioner trade-offs, and warm-start behavior with measurements;
// docs/STATIC_ANALYSIS.md documents the cmd/stressvet analyzer suite
// (internal/lint) that enforces the hot-path no-alloc, kernel-determinism,
// and lock-discipline invariants at build time, and the //stressvet:
// annotation grammar used throughout the source.
//
// All lengths are in µm, moduli in MPa, temperatures in °C; stresses come
// out in MPa.
package morestress
