package morestress_test

import (
	"fmt"

	morestress "repro"
	"repro/internal/mesh"
)

// The godoc examples use a deliberately coarse configuration so they run in
// test time; real studies use DefaultConfig as-is.
func exampleConfig() morestress.Config {
	cfg := morestress.DefaultConfig(15)
	cfg.Resolution = mesh.CoarseResolution()
	cfg.Nodes = [3]int{3, 3, 3}
	return cfg
}

// ExampleBuildModel shows the one-shot local stage: the element DoF count is
// determined by the interpolation nodes alone (Eq. 16 of the paper).
func ExampleBuildModel() {
	model, err := morestress.BuildModel(exampleConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println("element DoFs:", model.ElementDoFs())
	// Output:
	// element DoFs: 78
}

// ExampleModel_SolveArray solves a small clamped array and reports whether
// the global solver converged.
func ExampleModel_SolveArray() {
	model, err := morestress.BuildModel(exampleConfig())
	if err != nil {
		panic(err)
	}
	res, err := model.SolveArray(morestress.ArraySpec{
		Rows: 3, Cols: 3, DeltaT: -250,
		Options: morestress.SolverOptions{Tol: 1e-9},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Stats.Converged)
	fmt.Println("global DoFs:", res.GlobalDoFs)
	// Output:
	// converged: true
	// global DoFs: 414
}

// ExampleVonMises demonstrates the stress post-processing helpers.
func ExampleVonMises() {
	uniaxial := [6]float64{100, 0, 0, 0, 0, 0}
	fmt.Printf("vM = %.0f MPa\n", morestress.VonMises(uniaxial))
	p := morestress.PrincipalStresses(uniaxial)
	fmt.Printf("sigma1 = %.0f MPa, Tresca = %.0f MPa\n", p[0], morestress.Tresca(uniaxial))
	// Output:
	// vM = 100 MPa
	// sigma1 = 100 MPa, Tresca = 100 MPa
}

// ExamplePaperGeometry prints the paper's TSV dimensions.
func ExamplePaperGeometry() {
	g := morestress.PaperGeometry(10)
	fmt.Printf("h=%g d=%g t=%g p=%g µm\n", g.Height, g.Diameter, g.Liner, g.Pitch)
	// Output:
	// h=50 d=5 t=0.5 p=10 µm
}

// ExampleEngine_warmStart contrasts a ΔT sweep on the default engine —
// which assembles the lattice's reduced system once, orders the sweep by
// ΔT, and seeds each solve with its neighbor's solution — against an engine
// with EngineOptions.DisableWarmStart, which solves every scenario from
// zero. The solutions agree to solver tolerance; the iteration budget does
// not.
func ExampleEngine_warmStart() {
	sweep := func() []morestress.Job {
		jobs := make([]morestress.Job, 4)
		for i := range jobs {
			jobs[i] = morestress.Job{
				Config: exampleConfig(), Rows: 3, Cols: 3,
				DeltaT: -60 * float64(i+1),
				Solver: morestress.SolveCG,
			}
		}
		return jobs
	}
	warm := morestress.NewEngine(morestress.EngineOptions{Workers: 1})
	cold := morestress.NewEngine(morestress.EngineOptions{Workers: 1, DisableWarmStart: true})
	w := warm.BatchSolve(sweep())
	c := cold.BatchSolve(sweep())

	fmt.Println("errors:", w.Stats.Errors+c.Stats.Errors)
	fmt.Println("warm-started solves:", w.Stats.WarmStarts)
	fmt.Println("assemblies built:", warm.Stats().Assemblies)
	fmt.Println("warm sweep uses fewer iterations:", w.Stats.Iterations < c.Stats.Iterations)
	// Output:
	// errors: 0
	// warm-started solves: 3
	// assemblies built: 1
	// warm sweep uses fewer iterations: true
}
