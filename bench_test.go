package morestress

// Benchmark harness: one bench per table/figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results). Array sizes are scaled down from the paper's
// 10×10–50×50 so that the full fine-mesh reference stays solvable in bench
// time on one machine; cmd/repro -full runs the paper-scale sweep.
//
// Errors are attached to the timing benches via b.ReportMetric as
// "err%" (normalized MAE vs the full fine-mesh reference, the paper's
// metric).

import (
	"fmt"
	"sync"
	"testing"
)

const (
	benchDeltaT = -250.0
	benchGS     = 20 // per-block sampling (paper: 100; scaled for bench time)
)

// Lazily shared fixtures so that expensive one-shot stages run once across
// benches.
var benchState struct {
	mu      sync.Mutex
	models  map[string]*Model
	refs    map[string]*ReferenceResult
	sups    map[string]*Superposition
	pkgOnce sync.Once
	pkg     *CoarsePackage
	pkgErr  error
}

func benchConfig(pitch float64, nodes int) Config {
	cfg := DefaultConfig(pitch)
	cfg.Nodes = [3]int{nodes, nodes, nodes}
	return cfg
}

func benchModel(b *testing.B, pitch float64, nodes int, dummy bool) *Model {
	b.Helper()
	benchState.mu.Lock()
	defer benchState.mu.Unlock()
	if benchState.models == nil {
		benchState.models = map[string]*Model{}
	}
	key := fmt.Sprintf("p%g-n%d-d%v", pitch, nodes, dummy)
	if m, ok := benchState.models[key]; ok {
		return m
	}
	cfg := benchConfig(pitch, nodes)
	var m *Model
	var err error
	if dummy {
		m, err = BuildModelWithDummy(cfg)
	} else {
		m, err = BuildModel(cfg)
	}
	if err != nil {
		b.Fatal(err)
	}
	benchState.models[key] = m
	return m
}

func benchReference(b *testing.B, pitch float64, n int) *ReferenceResult {
	b.Helper()
	benchState.mu.Lock()
	defer benchState.mu.Unlock()
	if benchState.refs == nil {
		benchState.refs = map[string]*ReferenceResult{}
	}
	key := fmt.Sprintf("p%g-n%d", pitch, n)
	if r, ok := benchState.refs[key]; ok {
		return r
	}
	ref, err := ReferenceArray(benchConfig(pitch, 5), n, n, benchDeltaT, benchGS,
		SolverOptions{Tol: 1e-9})
	if err != nil {
		b.Fatal(err)
	}
	benchState.refs[key] = ref
	return ref
}

func benchSuperposition(b *testing.B, pitch float64) *Superposition {
	b.Helper()
	benchState.mu.Lock()
	defer benchState.mu.Unlock()
	if benchState.sups == nil {
		benchState.sups = map[string]*Superposition{}
	}
	key := fmt.Sprintf("p%g", pitch)
	if s, ok := benchState.sups[key]; ok {
		return s
	}
	s, err := BuildSuperposition(benchConfig(pitch, 5), 2, benchGS, SolverOptions{Tol: 1e-9})
	if err != nil {
		b.Fatal(err)
	}
	benchState.sups[key] = s
	return s
}

func benchPackage(b *testing.B) *CoarsePackage {
	b.Helper()
	benchState.pkgOnce.Do(func() {
		benchState.pkg, benchState.pkgErr = SolvePackage(DefaultPackage(),
			DefaultPackageResolution(), benchDeltaT, SolverOptions{Tol: 1e-8}, 0)
	})
	if benchState.pkgErr != nil {
		b.Fatal(benchState.pkgErr)
	}
	return benchState.pkg
}

// BenchmarkLocalStage measures the one-shot local stage (§4.2 / §5.3.1 text:
// 301.6 s and 287.4 s in the paper at commercial mesh density).
func BenchmarkLocalStage(b *testing.B) {
	for _, pitch := range []float64{15, 10} {
		b.Run(fmt.Sprintf("p=%g", pitch), func(b *testing.B) {
			cfg := benchConfig(pitch, 5)
			for i := 0; i < b.N; i++ {
				if _, err := BuildModel(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1MOREStress measures the global stage (time column "Ours" of
// Table 1) and attaches the error vs the fine reference.
func BenchmarkTable1MOREStress(b *testing.B) {
	for _, pitch := range []float64{15, 10} {
		for _, n := range []int{4, 6, 8} {
			b.Run(fmt.Sprintf("p=%g/size=%dx%d", pitch, n, n), func(b *testing.B) {
				m := benchModel(b, pitch, 5, false)
				ref := benchReference(b, pitch, n)
				var res *ArrayResult
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					res, err = m.SolveArray(ArraySpec{
						Rows: n, Cols: n, DeltaT: benchDeltaT,
						GridSamples: benchGS, Options: SolverOptions{Tol: 1e-9},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(100*NormalizedMAE(res.VM, ref.VM), "err%")
				b.ReportMetric(float64(res.GlobalDoFs), "globalDoFs")
			})
		}
	}
}

// BenchmarkTable1Reference measures the full fine-mesh FEM (the "ANSYS"
// column of Table 1).
func BenchmarkTable1Reference(b *testing.B) {
	for _, pitch := range []float64{15, 10} {
		for _, n := range []int{4, 6} {
			b.Run(fmt.Sprintf("p=%g/size=%dx%d", pitch, n, n), func(b *testing.B) {
				cfg := benchConfig(pitch, 5)
				var ref *ReferenceResult
				for i := 0; i < b.N; i++ {
					var err error
					ref, err = ReferenceArray(cfg, n, n, benchDeltaT, benchGS,
						SolverOptions{Tol: 1e-9})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(ref.DoFs), "fineDoFs")
			})
		}
	}
}

// BenchmarkTable1Superposition measures the linear superposition estimate
// (the baseline columns of Table 1) and attaches its error.
func BenchmarkTable1Superposition(b *testing.B) {
	for _, pitch := range []float64{15, 10} {
		for _, n := range []int{4, 6, 8} {
			b.Run(fmt.Sprintf("p=%g/size=%dx%d", pitch, n, n), func(b *testing.B) {
				s := benchSuperposition(b, pitch)
				ref := benchReference(b, pitch, n)
				var vm *Field
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					vm = s.EstimateArray(n, n, benchDeltaT)
				}
				b.StopTimer()
				b.ReportMetric(100*NormalizedMAE(vm, ref.VM), "err%")
			})
		}
	}
}

// BenchmarkTable2Embedded measures the sub-modeling global stage at the five
// package locations of Fig. 5(b) (Table 2, "Ours" rows).
func BenchmarkTable2Embedded(b *testing.B) {
	for _, loc := range Locations {
		b.Run(loc.String(), func(b *testing.B) {
			m := benchModel(b, 15, 5, true)
			pkg := benchPackage(b)
			spec := EmbeddedSpec{
				Rows: 5, Cols: 5, DummyRing: 2, Location: loc,
				GridSamples: benchGS, Options: SolverOptions{Tol: 1e-9},
			}
			for i := 0; i < b.N; i++ {
				if _, err := m.SolveEmbedded(pkg, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Convergence sweeps the interpolation node count
// (2,2,2)…(6,6,6) on a fixed array: global-stage runtime per n (Table 3 /
// Fig. 6; the local-stage runtime column is BenchmarkTable3LocalStage).
func BenchmarkTable3Convergence(b *testing.B) {
	const n = 6
	ref := (*ReferenceResult)(nil)
	for _, nodes := range []int{2, 3, 4, 5, 6} {
		b.Run(fmt.Sprintf("nodes=(%d,%d,%d)", nodes, nodes, nodes), func(b *testing.B) {
			m := benchModel(b, 15, nodes, false)
			if ref == nil {
				ref = benchReference(b, 15, n)
			}
			var res *ArrayResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = m.SolveArray(ArraySpec{
					Rows: n, Cols: n, DeltaT: benchDeltaT,
					GridSamples: benchGS, Options: SolverOptions{Tol: 1e-9},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(100*NormalizedMAE(res.VM, ref.VM), "err%")
			b.ReportMetric(float64(m.ElementDoFs()), "n")
		})
	}
}

// BenchmarkTable3LocalStage measures the one-shot local stage per node count
// (the "one-shot local stage runtime" row of Table 3).
func BenchmarkTable3LocalStage(b *testing.B) {
	for _, nodes := range []int{2, 3, 4, 5, 6} {
		b.Run(fmt.Sprintf("nodes=(%d,%d,%d)", nodes, nodes, nodes), func(b *testing.B) {
			cfg := benchConfig(15, nodes)
			for i := 0; i < b.N; i++ {
				if _, err := BuildModel(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGlobalSolver compares GMRES (the paper's choice) with CG
// on the same global problem — a design-choice ablation from DESIGN.md §5.
func BenchmarkAblationGlobalSolver(b *testing.B) {
	for _, useCG := range []bool{false, true} {
		name := "GMRES"
		if useCG {
			name = "CG"
		}
		b.Run(name, func(b *testing.B) {
			m := benchModel(b, 15, 5, false)
			for i := 0; i < b.N; i++ {
				if _, err := m.SolveArray(ArraySpec{
					Rows: 6, Cols: 6, DeltaT: benchDeltaT,
					UseCG: useCG, Options: SolverOptions{Tol: 1e-9},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
