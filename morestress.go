package morestress

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/array"
	"repro/internal/field"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/rom"
	"repro/internal/solver"
)

// Re-exported building blocks of the public API.
type (
	// Geometry is the TSV unit-cell geometry (µm).
	Geometry = mesh.TSVGeometry
	// Resolution controls the unit-block fine mesh.
	Resolution = mesh.BlockResolution
	// Materials groups the via/liner/bulk materials.
	Materials = material.TSVSet
	// Material is an isotropic thermoelastic material.
	Material = material.Material
	// Field is a 2-D scalar sample grid (e.g. mid-plane von Mises stress).
	Field = field.Grid2D
	// SolverOptions tunes the iterative solvers (including the
	// preconditioner via Precond).
	SolverOptions = solver.Options
	// SolverStats reports an iterative solve, including the resolved
	// preconditioner kind and whether the solve was warm-started.
	SolverStats = solver.Stats
	// Precond selects the preconditioner of the iterative global solvers.
	Precond = solver.PrecondKind
	// Ordering selects the symmetric ordering the factorizing
	// preconditioners (IC0) are built under, via SolverOptions.Ordering.
	Ordering = solver.OrderingKind
	// Precision selects the storage precision of the factorizing
	// preconditioners (IC0), via SolverOptions.Precision.
	Precision = solver.Precision
	// Vec3 is a 3-D point (µm).
	Vec3 = mesh.Vec3
	// Structure selects the fine structure inside the unit block.
	Structure = mesh.BlockKind
)

// Available fine structures (§6 of the paper: the method is
// structure-agnostic).
const (
	// StructureTSV is the paper's copper via + dielectric liner.
	StructureTSV = mesh.KindTSV
	// StructurePillar is a linerless cylinder (copper pillar / micro bump).
	StructurePillar = mesh.KindPillar
	// StructureAnnular is a hollow via-material ring (annular TSV).
	StructureAnnular = mesh.KindAnnular
)

// Preconditioner choices for SolverOptions.Precond.
const (
	// PrecondAuto (the default) picks by system size: block-Jacobi-3 for
	// small lattices, IC0 at and above solver.AutoIC0Threshold DoFs.
	PrecondAuto = solver.PrecondAuto
	// PrecondJacobi is the inverse-diagonal preconditioner.
	PrecondJacobi = solver.PrecondJacobi
	// PrecondBlockJacobi3 inverts the per-node 3×3 diagonal blocks.
	PrecondBlockJacobi3 = solver.PrecondBlockJacobi3
	// PrecondIC0 is zero-fill incomplete Cholesky.
	PrecondIC0 = solver.PrecondIC0
	// PrecondNone applies the identity.
	PrecondNone = solver.PrecondNone
)

// ParsePrecond maps the flag/JSON spellings ("auto", "jacobi",
// "block-jacobi3"/"bj3", "ic0", "none") to a Precond.
func ParsePrecond(s string) (Precond, error) { return solver.ParsePrecond(s) }

// Ordering choices for SolverOptions.Ordering.
const (
	// OrderingAuto (the default) keeps the natural ordering when its
	// dependency levels already fan out and switches IC0 to multicolor when
	// they are narrow (solver.AutoMulticolorWidth) and parallelism is
	// available.
	OrderingAuto = solver.OrderingAuto
	// OrderingNatural factors in the matrix's own row order.
	OrderingNatural = solver.OrderingNatural
	// OrderingRCM factors under the reverse Cuthill–McKee ordering.
	OrderingRCM = solver.OrderingRCM
	// OrderingMulticolor factors under the greedy multicolor ordering: one
	// wide dependency level per color, parallel preconditioner application.
	OrderingMulticolor = solver.OrderingMulticolor
)

// ParseOrdering maps the flag/JSON spellings ("auto", "natural", "rcm",
// "multicolor") to an Ordering.
func ParseOrdering(s string) (Ordering, error) { return solver.ParseOrdering(s) }

// Factor-precision choices for SolverOptions.Precision.
const (
	// PrecisionAuto (the default) stores the IC0 factor in float32 exactly
	// when the factor commits to the 3×3-tiled kernels, float64 otherwise.
	PrecisionAuto = solver.PrecisionAuto
	// PrecisionFloat64 forces double-precision factor storage.
	PrecisionFloat64 = solver.PrecisionFloat64
	// PrecisionFloat32 requests single-precision factor storage — roughly
	// half the factor bytes; PCG guards convergence with iterative
	// refinement and the array layer retries against a float64 rebuild if
	// the refinement budget runs out. Degrades to float64 when the factor
	// cannot tile.
	PrecisionFloat32 = solver.PrecisionFloat32
)

// ParsePrecision maps the flag/JSON spellings ("auto", "float64"/"f64"/
// "double", "float32"/"f32"/"single") to a Precision.
func ParsePrecision(s string) (Precision, error) { return solver.ParsePrecision(s) }

// PaperGeometry returns the geometry used throughout the paper's
// experiments: h = 50 µm, d = 5 µm, t = 0.5 µm at the given pitch.
func PaperGeometry(pitch float64) Geometry { return mesh.PaperGeometry(pitch) }

// DefaultMaterials returns the Cu via / SiO2 liner / Si bulk set.
func DefaultMaterials() Materials { return material.DefaultTSVSet() }

// Config specifies a MORE-Stress model (the input of the one-shot local
// stage).
type Config struct {
	// Geometry of the TSV unit cell.
	Geometry Geometry
	// Materials of via, liner, and bulk.
	Materials Materials
	// Resolution of the unit-block fine mesh.
	Resolution Resolution
	// Nodes is (nx, ny, nz), the Lagrange interpolation nodes per axis.
	// The paper's experiments use (4,4,4); on this package's voxel meshes
	// (5,5,5) reaches the paper's sub-1% error regime (see EXPERIMENTS.md).
	Nodes [3]int
	// Structure selects the fine structure kind (default StructureTSV; the
	// method is structure-agnostic per §6 of the paper).
	Structure Structure
	// Quadratic switches the fine discretization (local stage and
	// references) to 20-node serendipity elements — the commercial element
	// class; the global stage is unchanged.
	Quadratic bool
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the experiment configuration at the given pitch.
func DefaultConfig(pitch float64) Config {
	return Config{
		Geometry:   PaperGeometry(pitch),
		Materials:  DefaultMaterials(),
		Resolution: mesh.DefaultResolution(),
		Nodes:      [3]int{5, 5, 5},
	}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) romSpec(withVia bool) rom.Spec {
	kind := c.Structure
	if !withVia {
		kind = mesh.KindDummy
	}
	return rom.Spec{
		Geom:      c.Geometry,
		Mats:      c.Materials,
		Res:       c.Resolution,
		Nodes:     c.Nodes,
		WithVia:   withVia,
		Kind:      kind,
		Quadratic: c.Quadratic,
	}
}

// Model is a built MORE-Stress model: the reduced-order unit-block models
// produced by the one-shot local stage. A Model is reusable across arbitrary
// array sizes, thermal loads, and package locations (§4.1 of the paper).
type Model struct {
	Config Config
	// TSV is the reduced-order model of the TSV unit block.
	TSV *rom.ROM
	// Dummy is the pure-silicon block model for sub-modeling padding; built
	// on demand by EnsureDummy or BuildModelWithDummy.
	Dummy *rom.ROM
}

// BuildModel runs the one-shot local stage for the TSV unit block.
func BuildModel(cfg Config) (*Model, error) {
	r, err := rom.Build(cfg.romSpec(true), cfg.workers())
	if err != nil {
		return nil, fmt.Errorf("morestress: local stage failed: %w", err)
	}
	return &Model{Config: cfg, TSV: r}, nil
}

// BuildModelWithDummy runs the local stage for both the TSV block and the
// dummy (pure silicon) block used by sub-modeling.
func BuildModelWithDummy(cfg Config) (*Model, error) {
	m, err := BuildModel(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.EnsureDummy(); err != nil {
		return nil, err
	}
	return m, nil
}

// EnsureDummy builds the dummy-block ROM if it is not present (an extra
// local stage, §4.4).
func (m *Model) EnsureDummy() error {
	if m.Dummy != nil {
		return nil
	}
	d, err := rom.Build(m.Config.romSpec(false), m.Config.workers())
	if err != nil {
		return fmt.Errorf("morestress: dummy local stage failed: %w", err)
	}
	m.Dummy = d
	return nil
}

// LocalStageTime reports the one-shot local stage cost (TSV block, plus the
// dummy block when present).
func (m *Model) LocalStageTime() time.Duration {
	t := m.TSV.Stats.BuildTime
	if m.Dummy != nil {
		t += m.Dummy.Stats.BuildTime
	}
	return t
}

// ElementDoFs returns n of Eq. 16, the reduced element DoF count.
func (m *Model) ElementDoFs() int { return m.TSV.N }

// Save serializes the model (both ROMs if present).
func (m *Model) Save(w io.Writer) error {
	if err := m.TSV.Save(w); err != nil {
		return err
	}
	if m.Dummy != nil {
		return m.Dummy.Save(w)
	}
	return nil
}

// LoadModel reads a model written by Save. The dummy ROM is restored when it
// was saved: a clean end of stream after the TSV ROM means no dummy was
// saved, while a truncated or corrupt dummy record is an error.
func LoadModel(r io.Reader) (*Model, error) {
	tsv, err := rom.Load(r)
	if err != nil {
		return nil, err
	}
	m := &Model{TSV: tsv}
	m.Config = Config{
		Geometry:   tsv.Spec.Geom,
		Materials:  tsv.Spec.Mats,
		Resolution: tsv.Spec.Res,
		Nodes:      tsv.Spec.Nodes,
		Structure:  tsv.Spec.Kind,
		Quadratic:  tsv.Spec.Quadratic,
	}
	switch dummy, err := rom.Load(r); {
	case err == nil:
		m.Dummy = dummy
	case errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF):
		// No dummy ROM in the stream.
	default:
		return nil, fmt.Errorf("morestress: load dummy ROM: %w", err)
	}
	return m, nil
}

// ArraySpec describes a standalone clamped TSV array (scenario 1,
// Fig. 5(a)): Rows×Cols TSV blocks with top and bottom surfaces clamped.
type ArraySpec struct {
	// Rows, Cols are the array dimensions in blocks.
	Rows, Cols int
	// DeltaT is the thermal load in °C (paper: −250).
	DeltaT float64
	// DeltaTMap optionally overrides DeltaT per block (nonuniform thermal
	// fields, e.g. hotspots); nil means uniform DeltaT. The map is indexed
	// (row, col).
	DeltaTMap func(row, col int) float64
	// GridSamples is the per-block sampling resolution of the mid-plane von
	// Mises field (paper: 100). 0 disables field sampling.
	GridSamples int
	// UseCG selects the CG solver instead of the paper's GMRES.
	UseCG bool
	// Options tunes the global iterative solver.
	Options SolverOptions
}

// ArrayResult is a solved array.
type ArrayResult struct {
	// VM is the mid-plane von Mises field ((Cols·gs)×(Rows·gs)), nil if
	// GridSamples was 0.
	VM *Field
	// Solution retains the raw global-stage solution for further
	// post-processing.
	Solution *array.Solution
	// GlobalTime is assembly + solve + field sampling (the paper's
	// global-stage runtime).
	GlobalTime time.Duration
	// Stats reports the global iterative solve.
	Stats SolverStats
	// GlobalDoFs is the size of the reduced global system.
	GlobalDoFs int
}

// Iterative reports whether the result came from an iterative global solve
// (GMRES/PCG) — whose Stats carry iteration count, residual, preconditioner,
// and warm-start provenance — rather than a direct factorization or the
// degenerate all-constrained case (where no solver runs and the Stats are
// blank apart from Converged).
func (r *ArrayResult) Iterative() bool {
	return r.Solution != nil && r.Solution.Prob.Solver != array.Direct && len(r.Solution.QFree) > 0
}

// SolveArray runs the global stage for a standalone clamped array.
func (m *Model) SolveArray(spec ArraySpec) (*ArrayResult, error) {
	kind := array.GMRES
	if spec.UseCG {
		kind = array.CG
	}
	prob := globalProblem(m.TSV, spec.Rows, spec.Cols, spec.DeltaT, spec.DeltaTMap, kind, spec.Options, m.Config.workers())
	return solveGlobal(prob, spec.GridSamples)
}

// globalProblem translates a standalone clamped-array scenario into the
// abstract global-stage problem — the single scenario-to-Problem mapping
// shared by Model.SolveArray and the batch Engine. dtMap is indexed
// (row, col) and is swapped here to the array package's (bx, by).
func globalProblem(r *rom.ROM, rows, cols int, deltaT float64, dtMap func(row, col int) float64, kind array.SolverKind, opt SolverOptions, workers int) *array.Problem {
	var dtFor func(bx, by int) float64
	if dtMap != nil {
		dtFor = func(bx, by int) float64 { return dtMap(by, bx) }
	}
	return &array.Problem{
		ROM: r, Bx: cols, By: rows,
		DeltaT:    deltaT,
		DeltaTFor: dtFor,
		BC:        engineBC,
		Solver:    kind,
		Opt:       opt,
		Workers:   workers,
	}
}

// solveGlobal runs the global stage of prob, samples the mid-plane field
// when requested, and packages the result with its timing.
func solveGlobal(prob *array.Problem, gridSamples int) (*ArrayResult, error) {
	start := time.Now()
	sol, err := array.Solve(prob)
	if err != nil {
		return nil, err
	}
	res := &ArrayResult{
		Solution:   sol,
		Stats:      sol.Stats,
		GlobalDoFs: sol.GlobalDoFs,
	}
	if gridSamples > 0 {
		res.VM = sol.VMField(gridSamples, prob.Workers)
	}
	res.GlobalTime = time.Since(start)
	return res, nil
}
