// Command benchcheck is the CI perf-regression gate: it validates the
// BENCH_global.json perf snapshot against its schema and, given the output
// of a `go test -bench` run, fails when a measured benchmark regresses past
// the pinned baselines — ns/op beyond a generous tolerance (CI machines are
// noisy and slower than the baseline container; default 3×), or allocs/op
// above the pinned floor (the zero-allocation contracts are exact, no
// tolerance). The gate turns the snapshot from a descriptive artifact into
// an enforced contract: renaming or dropping a required benchmark fails the
// run too (-require), every required benchmark must pin an allocs_per_op
// floor, and a baseline with duplicate JSON keys (which encoding/json would
// silently collapse) is rejected, so the guard cannot be weakened silently.
//
// Since bench-global/v2 the snapshot also carries per-host-profile sections
// keyed "(GOOS)/(GOARCH)/n(nproc)" (see internal/solver/tuning), so the
// single-thread dev-container numbers and real multi-core CI numbers stop
// overwriting each other and gates compare like against like. The -ingest
// mode folds measurement artifacts — `go test -bench` output and
// cmd/loadgen JSON reports — into the profile matching the running (or
// -profile-named) host: new numbers are gated against the pinned profile
// first (ns/op and loadgen p99 beyond -tolerance× fail, and nothing is
// written then), -write persists the updated baseline, and -snapshot
// regenerates the embedded tuning snapshot the serve/router binaries derive
// their solver thresholds from. docs/MEASUREMENT.md documents the loop.
//
// Usage:
//
//	benchcheck -baseline BENCH_global.json                      # schema only
//	go test -bench . -benchmem | benchcheck -baseline BENCH_global.json -bench -
//	benchcheck -baseline BENCH_global.json -bench out.txt \
//	    -tolerance 3 -require BenchmarkBatchEngine,BenchmarkPCGNoAlloc
//	benchcheck -baseline BENCH_global.json -ingest bench.txt,loadgen.json \
//	    [-profile linux/amd64/n4] [-write] [-snapshot internal/solver/tuning/snapshot.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/solver/tuning"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_global.json", "perf snapshot to validate and compare against")
	benchPath := flag.String("bench", "", "go test -bench output to check against the baselines (\"-\" for stdin; empty = schema validation only)")
	tolerance := flag.Float64("tolerance", 3.0, "ns/op regression factor that fails the gate (generous: absorbs CI noise and machine differences)")
	require := flag.String("require", "", "comma-separated benchmark entries that must appear in the measured output")
	ingest := flag.String("ingest", "", "comma-separated measurement artifacts (go test -bench output and/or cmd/loadgen JSON reports) to fold into the host profile, gating against its pinned values first")
	profile := flag.String("profile", "", "host-profile key goos/goarch/nN the ingested artifacts were measured on (default: the running host)")
	write := flag.Bool("write", false, "persist the ingested host profile back into -baseline (skipped when the gate fails)")
	snapshot := flag.String("snapshot", "", "also write the updated host_profiles section to this path (the internal/solver/tuning embedded snapshot)")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	base, err := parseBaseline(raw)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *baselinePath, err))
	}
	fmt.Printf("benchcheck: %s schema ok (%d benchmark entries, %d host profiles, pr %d)\n",
		*baselinePath, len(base.Benchmarks), len(base.HostProfiles), base.PR)
	if *ingest != "" {
		if err := runIngest(*baselinePath, raw, base, ingestConfig{
			Files:     strings.Split(*ingest, ","),
			Profile:   *profile,
			Tolerance: *tolerance,
			Write:     *write,
			Snapshot:  *snapshot,
		}); err != nil {
			fatal(err)
		}
		if *benchPath == "" {
			return
		}
	}
	if *benchPath == "" {
		return
	}

	var benchRaw []byte
	if *benchPath == "-" {
		benchRaw, err = io.ReadAll(os.Stdin)
	} else {
		benchRaw, err = os.ReadFile(*benchPath)
	}
	if err != nil {
		fatal(err)
	}
	measured := parseBenchOutput(string(benchRaw))
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark results found in %s", *benchPath))
	}
	var required []string
	if *require != "" {
		required = strings.Split(*require, ",")
	}
	failures, report := check(base, measured, *tolerance, required)
	fmt.Print(report)
	if failures > 0 {
		fatal(fmt.Errorf("%d benchmark regression(s)", failures))
	}
	fmt.Println("benchcheck: all measured benchmarks within tolerance")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}

// baseline is the decoded BENCH_global.json.
type baseline struct {
	Schema       string
	PR           int
	Benchmarks   map[string]*baseEntry
	HostProfiles tuning.Set
}

// baseEntry is one benchmark entry of the snapshot. Exactly one of Value
// (single result) or Values (sub-benchmark map) is set; AllocsPerOp, when
// present, is an exact ceiling for the measured allocs/op.
type baseEntry struct {
	Unit        string
	Value       float64
	HasValue    bool
	Values      map[string]float64
	AllocsPerOp float64
	HasAllocs   bool
}

// parseBaseline validates the bench-global/v2 schema: required top-level
// keys, per benchmark entry a unit plus exactly one of value/values
// (numbers), and — new in v2 — an optional host_profiles section validated
// by internal/solver/tuning. This replaces the old parse-only check — a
// snapshot that decodes but lost its fields would silently disarm the gate.
func parseBaseline(raw []byte) (*baseline, error) {
	if err := checkDuplicateKeys(raw); err != nil {
		return nil, err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return nil, err
	}
	out := &baseline{Benchmarks: make(map[string]*baseEntry)}
	if err := json.Unmarshal(top["schema"], &out.Schema); err != nil || out.Schema != "bench-global/v2" {
		if out.Schema == "bench-global/v1" {
			return nil, fmt.Errorf("schema is bench-global/v1: v1 snapshots predate per-host profiles — " +
				"set \"schema\": \"bench-global/v2\" and move host-specific measurements into a " +
				"\"host_profiles\" section keyed \"<goos>/<goarch>/n<nproc>\" (see docs/MEASUREMENT.md " +
				"and `benchcheck -ingest` for regenerating it from measurement artifacts)")
		}
		return nil, fmt.Errorf("schema key missing or not \"bench-global/v2\"")
	}
	if err := json.Unmarshal(top["pr"], &out.PR); err != nil || out.PR < 1 {
		return nil, fmt.Errorf("pr key missing or not a positive number")
	}
	var benches map[string]json.RawMessage
	if err := json.Unmarshal(top["benchmarks"], &benches); err != nil {
		return nil, fmt.Errorf("benchmarks key missing or not an object")
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("benchmarks object is empty")
	}
	for name, rawEntry := range benches {
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(rawEntry, &fields); err != nil {
			return nil, fmt.Errorf("benchmark %q: not an object", name)
		}
		e := &baseEntry{}
		if err := json.Unmarshal(fields["unit"], &e.Unit); err != nil || e.Unit == "" {
			return nil, fmt.Errorf("benchmark %q: unit key missing or not a string", name)
		}
		_, hasValue := fields["value"]
		_, hasValues := fields["values"]
		if hasValue == hasValues {
			return nil, fmt.Errorf("benchmark %q: want exactly one of value/values", name)
		}
		if hasValue {
			if err := json.Unmarshal(fields["value"], &e.Value); err != nil {
				return nil, fmt.Errorf("benchmark %q: value is not a number", name)
			}
			e.HasValue = true
		} else {
			if err := json.Unmarshal(fields["values"], &e.Values); err != nil || len(e.Values) == 0 {
				return nil, fmt.Errorf("benchmark %q: values is not a non-empty object of numbers", name)
			}
		}
		if rawAllocs, ok := fields["allocs_per_op"]; ok {
			if err := json.Unmarshal(rawAllocs, &e.AllocsPerOp); err != nil || e.AllocsPerOp < 0 {
				return nil, fmt.Errorf("benchmark %q: allocs_per_op is not a non-negative number", name)
			}
			e.HasAllocs = true
		}
		out.Benchmarks[name] = e
	}
	// The host_profiles section shares its schema (and validation) with the
	// runtime consumer, internal/solver/tuning — the file serving tunes
	// itself from is the same file CI gates.
	set, err := tuning.Parse(raw)
	if err != nil {
		return nil, err
	}
	out.HostProfiles = set
	return out, nil
}

// checkDuplicateKeys walks the raw JSON token stream and rejects any object
// declaring the same key twice. encoding/json silently keeps the last
// duplicate, which for the benchmarks (or a values) object would let one
// pinned baseline shadow another without any visible failure.
func checkDuplicateKeys(raw []byte) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	var walk func(path string) error
	walk = func(path string) error {
		t, err := dec.Token()
		if err != nil {
			return err
		}
		d, ok := t.(json.Delim)
		if !ok {
			return nil // scalar value
		}
		switch d {
		case '{':
			seen := make(map[string]bool)
			for dec.More() {
				kt, err := dec.Token()
				if err != nil {
					return err
				}
				key, _ := kt.(string)
				if seen[key] {
					return fmt.Errorf("duplicate key %q in object %s", key, path)
				}
				seen[key] = true
				if err := walk(path + "." + key); err != nil {
					return err
				}
			}
		case '[':
			i := 0
			for dec.More() {
				if err := walk(fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
				i++
			}
		}
		_, err = dec.Token() // consume the closing delimiter
		return err
	}
	return walk("$")
}

// measurement aggregates the result lines of one benchmark name across -cpu
// values and repetitions: the gate compares the best ns/op (machines only
// add noise upward) but the worst allocs/op (the zero-alloc contract must
// hold for every worker count).
type measurement struct {
	MinNs     float64
	MaxAllocs float64
	HasAllocs bool
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkPCGNoAlloc-4   500   2576731 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// allocsField extracts the allocs/op column from a result line's tail.
var allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)

// procsSuffix is the trailing -GOMAXPROCS testing appends to benchmark
// names (absent at GOMAXPROCS=1).
var procsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput collects the result lines of a `go test -bench` run,
// keyed by benchmark name with the -GOMAXPROCS suffix stripped (so -cpu 1,4
// runs of one benchmark fold into one measurement).
func parseBenchOutput(out string) map[string]*measurement {
	ms := make(map[string]*measurement)
	for _, line := range strings.Split(out, "\n") {
		sub := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if sub == nil {
			continue
		}
		name := procsSuffix.ReplaceAllString(sub[1], "")
		ns, err := strconv.ParseFloat(sub[2], 64)
		if err != nil {
			continue
		}
		m := ms[name]
		if m == nil {
			m = &measurement{MinNs: ns}
			ms[name] = m
		} else if ns < m.MinNs {
			m.MinNs = ns
		}
		if a := allocsField.FindStringSubmatch(sub[3]); a != nil {
			if allocs, err := strconv.ParseFloat(a[1], 64); err == nil {
				if allocs > m.MaxAllocs {
					m.MaxAllocs = allocs
				}
				m.HasAllocs = true
			}
		}
	}
	return ms
}

// check compares the measurements against the baseline: ns/op entries
// (value or per-sub-benchmark values) fail beyond tolerance × baseline,
// allocs_per_op floors fail exactly, and required entries must have been
// measured — every pinned sub-benchmark of them, so renaming or dropping
// one row of a values entry cannot silently disarm its piece of the gate.
// Entries in units other than ns/op (iteration counts, metric tables) are
// informational and skipped.
func check(base *baseline, measured map[string]*measurement, tolerance float64, required []string) (failures int, report string) {
	var b strings.Builder
	missing := make(map[string][]string) // entry → pinned names absent from the run
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(&b, "FAIL: "+format+"\n", args...)
	}
	compare := func(entry, name string, baseNs float64, e *baseEntry) {
		m, ok := measured[name]
		if !ok {
			missing[entry] = append(missing[entry], name)
			return
		}
		limit := baseNs * tolerance
		if m.MinNs > limit {
			fail("%s: %.0f ns/op exceeds %.1f× baseline %.0f ns/op", name, m.MinNs, tolerance, baseNs)
		} else {
			fmt.Fprintf(&b, "ok:   %s: %.0f ns/op (baseline %.0f, limit %.0f)\n", name, m.MinNs, baseNs, limit)
		}
		if e.HasAllocs {
			if !m.HasAllocs {
				fail("%s: baseline pins %.0f allocs/op but the run did not report allocs (missing -benchmem?)", name, e.AllocsPerOp)
			} else if m.MaxAllocs > e.AllocsPerOp {
				fail("%s: %.1f allocs/op exceeds the pinned floor of %.0f", name, m.MaxAllocs, e.AllocsPerOp)
			} else {
				fmt.Fprintf(&b, "ok:   %s: %.0f allocs/op (floor %.0f)\n", name, m.MaxAllocs, e.AllocsPerOp)
			}
		}
	}
	// Sorted iteration keeps the report stable run to run, so CI log diffs
	// show real changes rather than map-order shuffles.
	for _, name := range sortedKeys(base.Benchmarks) {
		e := base.Benchmarks[name]
		if e.Unit != "ns/op" {
			continue
		}
		if e.HasValue {
			compare(name, name, e.Value, e)
			continue
		}
		for _, sub := range sortedKeys(e.Values) {
			compare(name, name+"/"+sub, e.Values[sub], e)
		}
	}
	for _, name := range required {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := base.Benchmarks[name]
		if !ok || e.Unit != "ns/op" {
			fail("required benchmark %s has no ns/op baseline entry to gate against", name)
			continue
		}
		// A required benchmark must also pin its allocation behavior: a
		// ns/op-only entry would let an allocation regression through the
		// gate's most-watched benchmarks.
		if !e.HasAllocs {
			fail("required benchmark %s pins no allocs_per_op floor in the baseline", name)
		}
		for _, absent := range missing[name] {
			fail("required benchmark %s was not measured against its %s baseline", name, absent)
		}
	}
	return failures, b.String()
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
