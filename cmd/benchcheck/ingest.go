// Ingestion: fold measurement artifacts (go test -bench output, cmd/loadgen
// JSON reports) into the host-profile section of the baseline, gating the
// new numbers against the pinned profile first. See the package comment in
// main.go and docs/MEASUREMENT.md for how this closes the measurement loop.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/solver/tuning"
)

// ingestConfig carries the -ingest flag set.
type ingestConfig struct {
	Files     []string
	Profile   string  // host-profile key; "" = the running host
	Tolerance float64 // regression factor for ns/op and loadgen p99 gates
	Write     bool    // splice the updated profile back into -baseline
	Snapshot  string  // also write the bare host_profiles object here
}

// runIngest parses each artifact, gates it against the pinned profile for
// the target host (exact key when present, else the nearest same-platform
// profile — the generous tolerance absorbs the host difference), folds the
// measurements into the profile, re-derives its tuning aggregates, and —
// only when the gate passed — persists per -write/-snapshot.
func runIngest(baselinePath string, raw []byte, base *baseline, cfg ingestConfig) error {
	set := base.HostProfiles
	if set == nil {
		set = tuning.Set{}
	}
	key := cfg.Profile
	if key == "" {
		key = tuning.Key(runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
	}
	goos, goarch, nproc, err := splitProfileKey(key)
	if err != nil {
		return err
	}
	pinned, exact := set.Match(goos, goarch, nproc)
	switch {
	case pinned == nil:
		fmt.Printf("ingest: no pinned profile for platform %s/%s — first measurement, nothing to gate against\n", goos, goarch)
	case exact:
		fmt.Printf("ingest: gating against pinned profile %s\n", key)
	default:
		fmt.Printf("ingest: no pinned %s profile — gating against nearest same-platform profile %s\n",
			key, tuning.Key(pinned.GOOS, pinned.GOARCH, pinned.NProc))
	}

	updated := cloneProfile(set[key])
	if updated == nil {
		updated = &tuning.HostProfile{GOOS: goos, GOARCH: goarch, NProc: nproc}
	}
	updated.UpdatedPR = base.PR

	var b strings.Builder
	failures := 0
	for _, f := range cfg.Files {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if looksLikeJSON(data) {
			eps, err := parseLoadgenReport(data)
			if err != nil {
				return fmt.Errorf("%s: %w", f, err)
			}
			failures += gateLoadgen(&b, pinned, eps, cfg.Tolerance)
			if updated.Loadgen == nil {
				updated.Loadgen = make(map[string]*tuning.LoadgenEntry)
			}
			for ep, e := range eps {
				updated.Loadgen[ep] = e
			}
			fmt.Fprintf(&b, "read: %s: loadgen report, %d endpoint(s)\n", f, len(eps))
		} else {
			folded := foldBenchEntries(parseBenchOutput(string(data)))
			if len(folded) == 0 {
				return fmt.Errorf("%s: no benchmark results found (neither bench text nor a loadgen JSON report)", f)
			}
			failures += gateBench(&b, pinned, folded, cfg.Tolerance)
			if updated.Benchmarks == nil {
				updated.Benchmarks = make(map[string]*tuning.BenchEntry)
			}
			for name, e := range folded {
				updated.Benchmarks[name] = e
			}
			fmt.Fprintf(&b, "read: %s: bench output, %d benchmark(s)\n", f, len(folded))
		}
	}
	deriveTuningData(updated)
	fmt.Print(b.String())
	if failures > 0 {
		return fmt.Errorf("%d ingest regression(s); baseline left untouched", failures)
	}

	set[key] = updated
	tun := tuning.Derive(updated, true)
	fmt.Printf("ingest: profile %s ok (%d benchmarks, %d loadgen endpoints)\n", key, len(updated.Benchmarks), len(updated.Loadgen))
	fmt.Printf("ingest: derived tunables for %s: ic0_threshold=%d multicolor_width=%d workers=%d\n",
		key, tun.IC0Threshold, tun.MulticolorWidth, tun.Workers)
	fmt.Printf("ingest: derivation: %s\n", tun.Source)

	wrote := false
	if cfg.Write {
		out, err := spliceHostProfiles(raw, set)
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("ingest: wrote %s\n", baselinePath)
		wrote = true
	}
	if cfg.Snapshot != "" {
		out, err := json.MarshalIndent(set, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.Snapshot, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("ingest: wrote %s\n", cfg.Snapshot)
		wrote = true
	}
	if !wrote {
		fmt.Println("ingest: gate-only run (no -write/-snapshot), baseline unchanged")
	}
	return nil
}

// splitProfileKey parses "<goos>/<goarch>/n<nproc>".
func splitProfileKey(key string) (goos, goarch string, nproc int, err error) {
	parts := strings.Split(key, "/")
	if len(parts) == 3 && strings.HasPrefix(parts[2], "n") && parts[0] != "" && parts[1] != "" {
		if n, e := strconv.Atoi(parts[2][1:]); e == nil && n >= 1 {
			return parts[0], parts[1], n, nil
		}
	}
	return "", "", 0, fmt.Errorf("-profile %q: want <goos>/<goarch>/n<nproc>, e.g. linux/amd64/n4", key)
}

// cloneProfile deep-copies a host profile so gating failures never leave a
// half-mutated set behind. Returns nil for nil.
func cloneProfile(p *tuning.HostProfile) *tuning.HostProfile {
	if p == nil {
		return nil
	}
	out := *p
	if p.Benchmarks != nil {
		out.Benchmarks = make(map[string]*tuning.BenchEntry, len(p.Benchmarks))
		for k, e := range p.Benchmarks {
			c := *e
			if e.Value != nil {
				v := *e.Value
				c.Value = &v
			}
			if e.AllocsPerOp != nil {
				a := *e.AllocsPerOp
				c.AllocsPerOp = &a
			}
			if e.Values != nil {
				c.Values = make(map[string]float64, len(e.Values))
				for sk, sv := range e.Values {
					c.Values[sk] = sv
				}
			}
			out.Benchmarks[k] = &c
		}
	}
	if p.Loadgen != nil {
		out.Loadgen = make(map[string]*tuning.LoadgenEntry, len(p.Loadgen))
		for k, e := range p.Loadgen {
			c := *e
			out.Loadgen[k] = &c
		}
	}
	if p.Tuning != nil {
		c := *p.Tuning
		c.PrecondCrossover = append([]tuning.CrossoverRow(nil), p.Tuning.PrecondCrossover...)
		out.Tuning = &c
	}
	return &out
}

func looksLikeJSON(data []byte) bool {
	trimmed := bytes.TrimSpace(data)
	return len(trimmed) > 0 && trimmed[0] == '{'
}

// loadgenReport mirrors the report cmd/loadgen emits; only the fields the
// ingest gate needs are decoded here.
type loadgenReport struct {
	Schema    string                          `json:"schema"`
	Endpoints map[string]*tuning.LoadgenEntry `json:"endpoints"`
}

func parseLoadgenReport(data []byte) (map[string]*tuning.LoadgenEntry, error) {
	var rep loadgenReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if !strings.HasPrefix(rep.Schema, "loadgen-report/") {
		return nil, fmt.Errorf("JSON artifact has schema %q, want loadgen-report/v1", rep.Schema)
	}
	if len(rep.Endpoints) == 0 {
		return nil, fmt.Errorf("loadgen report has no endpoints section")
	}
	for ep, e := range rep.Endpoints {
		if e == nil {
			return nil, fmt.Errorf("loadgen report endpoint %q is null", ep)
		}
	}
	return rep.Endpoints, nil
}

// foldBenchEntries groups flat measurements ("BenchmarkX/sub/path") into
// per-benchmark host-profile entries: a bare name becomes a value entry, sub
// rows a values map, folding the worst allocs/op across rows into the
// entry's ceiling.
func foldBenchEntries(ms map[string]*measurement) map[string]*tuning.BenchEntry {
	out := make(map[string]*tuning.BenchEntry)
	for name, m := range ms {
		top, sub, hasSub := strings.Cut(name, "/")
		e := out[top]
		if e == nil {
			e = &tuning.BenchEntry{Unit: "ns/op"}
			out[top] = e
		}
		if hasSub {
			if e.Values == nil {
				e.Values = make(map[string]float64)
			}
			e.Values[sub] = m.MinNs
		} else {
			v := m.MinNs
			e.Value = &v
		}
		if m.HasAllocs && (e.AllocsPerOp == nil || m.MaxAllocs > *e.AllocsPerOp) {
			a := m.MaxAllocs
			e.AllocsPerOp = &a
		}
	}
	// A parent line alongside sub rows (rare) cannot keep both forms — fold
	// the bare value in as a self row so the entry stays schema-valid.
	for _, e := range out {
		if e.Value != nil && len(e.Values) > 0 {
			e.Values["self"] = *e.Value
			e.Value = nil
		}
	}
	return out
}

// gateBench compares the freshly folded entries against the pinned
// profile's: a new best-ns/op beyond tolerance × the pinned value fails, as
// does exceeding a pinned allocs/op ceiling (exact — allocation counts are
// contracts, not noise). Rows without a pinned counterpart pass (first
// measurement).
func gateBench(b *strings.Builder, pinned *tuning.HostProfile, folded map[string]*tuning.BenchEntry, tolerance float64) (failures int) {
	if pinned == nil {
		return 0
	}
	for _, name := range sortedKeys(folded) {
		fresh := folded[name]
		pin := pinned.Benchmarks[name]
		if pin == nil || pin.Unit != "ns/op" {
			continue
		}
		compare := func(row string, freshNs, pinNs float64) {
			limit := pinNs * tolerance
			if freshNs > limit {
				failures++
				fmt.Fprintf(b, "FAIL: %s: %.0f ns/op exceeds %.1f× pinned %.0f ns/op\n", row, freshNs, tolerance, pinNs)
			} else {
				fmt.Fprintf(b, "ok:   %s: %.0f ns/op (pinned %.0f, limit %.0f)\n", row, freshNs, pinNs, limit)
			}
		}
		if fresh.Value != nil && pin.Value != nil {
			compare(name, *fresh.Value, *pin.Value)
		}
		for _, sub := range sortedKeys(fresh.Values) {
			if pinNs, ok := pin.Values[sub]; ok {
				compare(name+"/"+sub, fresh.Values[sub], pinNs)
			}
		}
		if pin.AllocsPerOp != nil && fresh.AllocsPerOp != nil && *fresh.AllocsPerOp > *pin.AllocsPerOp {
			failures++
			fmt.Fprintf(b, "FAIL: %s: %.1f allocs/op exceeds the pinned ceiling of %.0f\n", name, *fresh.AllocsPerOp, *pin.AllocsPerOp)
		}
	}
	return failures
}

// gateLoadgen compares a fresh report's per-endpoint p99 against the pinned
// profile's loadgen section at the same tolerance. Endpoints without a
// pinned counterpart pass (first measurement).
func gateLoadgen(b *strings.Builder, pinned *tuning.HostProfile, eps map[string]*tuning.LoadgenEntry, tolerance float64) (failures int) {
	if pinned == nil {
		return 0
	}
	for _, ep := range sortedKeys(eps) {
		fresh := eps[ep]
		pin := pinned.Loadgen[ep]
		if pin == nil || pin.P99MS <= 0 {
			continue
		}
		limit := pin.P99MS * tolerance
		if fresh.P99MS > limit {
			failures++
			fmt.Fprintf(b, "FAIL: loadgen %s: p99 %.1f ms exceeds %.1f× pinned %.1f ms\n", ep, fresh.P99MS, tolerance, pin.P99MS)
		} else {
			fmt.Fprintf(b, "ok:   loadgen %s: p99 %.1f ms (pinned %.1f, limit %.1f)\n", ep, fresh.P99MS, pin.P99MS, limit)
		}
	}
	return failures
}

// deriveTuningData refreshes the profile's measured aggregates from the
// benchmark rows internal/solver/tuning documents: the multicolor IC0-apply
// speedup from BenchmarkIC0Apply's narrowDAG-multicolor rows and the
// parallel mat-vec speedup from BenchmarkBlockedMulVec's blocked rows.
// Crossover rows come from the MEASURE=1 harness, not bench output, so any
// existing ones are preserved untouched.
func deriveTuningData(p *tuning.HostProfile) {
	td := p.Tuning
	if td == nil {
		td = &tuning.TuningData{}
	}
	if s, pool, ok := valuePair(p, "BenchmarkIC0Apply", "narrowDAG-multicolor/serial", "narrowDAG-multicolor/levelsched-pool"); ok {
		td.MulticolorApplySpeedup = roundRatio(s / pool)
	}
	if s, par, ok := valuePair(p, "BenchmarkBlockedMulVec", "blocked/serial", "blocked/par"); ok {
		td.MatvecParSpeedup = roundRatio(s / par)
	}
	if td.MulticolorApplySpeedup != 0 || td.MatvecParSpeedup != 0 || len(td.PrecondCrossover) > 0 {
		p.Tuning = td
	}
}

func valuePair(p *tuning.HostProfile, bench, numKey, denKey string) (num, den float64, ok bool) {
	e := p.Benchmarks[bench]
	if e == nil || e.Values == nil {
		return 0, 0, false
	}
	num, okN := e.Values[numKey]
	den, okD := e.Values[denKey]
	return num, den, okN && okD && den > 0
}

func roundRatio(r float64) float64 { return math.Round(r*100) / 100 }

// spliceHostProfiles replaces (or appends) the baseline's host_profiles
// section in the raw file bytes, leaving every other byte — key order,
// comments-as-notes, formatting — untouched. Re-marshaling the whole file
// would alphabetize it and destroy the curated reading order.
func spliceHostProfiles(raw []byte, set tuning.Set) ([]byte, error) {
	section, err := json.MarshalIndent(set, "  ", "  ")
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	if _, err := dec.Token(); err != nil { // opening '{'
		return nil, err
	}
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return nil, err
		}
		key, _ := kt.(string)
		var v json.RawMessage
		if err := dec.Decode(&v); err != nil {
			return nil, err
		}
		if key != "host_profiles" {
			continue
		}
		// RawMessage holds the value bytes verbatim, so the value's source
		// span ends at the decoder's offset and starts len(v) before it.
		end := dec.InputOffset()
		start := end - int64(len(v))
		var out bytes.Buffer
		out.Write(raw[:start])
		out.Write(section)
		out.Write(raw[end:])
		return out.Bytes(), nil
	}
	// No host_profiles key yet: insert it before the closing brace.
	closing := bytes.LastIndexByte(raw, '}')
	if closing < 0 {
		return nil, fmt.Errorf("baseline has no closing brace")
	}
	head := bytes.TrimRight(raw[:closing], " \t\n")
	var out bytes.Buffer
	out.Write(head)
	out.WriteString(",\n  \"host_profiles\": ")
	out.Write(section)
	out.WriteString("\n")
	out.Write(raw[closing:])
	return out.Bytes(), nil
}
