package main

import (
	"os"
	"strings"
	"testing"
)

const goodBaseline = `{
  "schema": "bench-global/v2",
  "pr": 5,
  "benchmarks": {
    "BenchmarkBatchEngine": { "unit": "ns/op", "value": 1000000, "allocs_per_op": 2048, "what": "warm batch" },
    "BenchmarkPCGNoAlloc": { "unit": "ns/op", "value": 2000000, "allocs_per_op": 0 },
    "BenchmarkIC0Apply": { "unit": "ns/op", "allocs_per_op": 1, "values": { "narrowDAG/serial": 2400000, "wideDAG/levelsched-pool": 1200000 } },
    "BenchmarkPCGPrecond": { "unit": "iterations", "values": { "ic0": 27 } }
  }
}`

func TestParseBaselineSchema(t *testing.T) {
	if _, err := parseBaseline([]byte(goodBaseline)); err != nil {
		t.Fatalf("good baseline rejected: %v", err)
	}
	bad := map[string]string{
		"not json":     `{`,
		"wrong schema": `{"schema":"bench/v0","pr":5,"benchmarks":{"B":{"unit":"ns/op","value":1}}}`,
		"bad host profile key": `{"schema":"bench-global/v2","pr":5,"benchmarks":{"B":{"unit":"ns/op","value":1}},
			"host_profiles":{"linux/amd64/n4":{"goos":"linux","goarch":"amd64","nproc":2}}}`,
		"missing pr":      `{"schema":"bench-global/v2","benchmarks":{"B":{"unit":"ns/op","value":1}}}`,
		"no benchmarks":   `{"schema":"bench-global/v2","pr":5}`,
		"empty bench map": `{"schema":"bench-global/v2","pr":5,"benchmarks":{}}`,
		"missing unit":    `{"schema":"bench-global/v2","pr":5,"benchmarks":{"B":{"value":1}}}`,
		"value+values":    `{"schema":"bench-global/v2","pr":5,"benchmarks":{"B":{"unit":"ns/op","value":1,"values":{"a":1}}}}`,
		"neither value":   `{"schema":"bench-global/v2","pr":5,"benchmarks":{"B":{"unit":"ns/op"}}}`,
		"string value":    `{"schema":"bench-global/v2","pr":5,"benchmarks":{"B":{"unit":"ns/op","value":"fast"}}}`,
		"negative allocs": `{"schema":"bench-global/v2","pr":5,"benchmarks":{"B":{"unit":"ns/op","value":1,"allocs_per_op":-1}}}`,
	}
	for name, raw := range bad {
		if _, err := parseBaseline([]byte(raw)); err == nil {
			t.Errorf("%s: invalid baseline accepted", name)
		}
	}
}

// TestV1SchemaRejectedWithMigrationMessage: pre-host-profile snapshots must
// fail with a pointer at the v2 migration, not a generic schema error.
func TestV1SchemaRejectedWithMigrationMessage(t *testing.T) {
	v1 := `{"schema":"bench-global/v1","pr":9,"benchmarks":{"B":{"unit":"ns/op","value":1}}}`
	_, err := parseBaseline([]byte(v1))
	if err == nil {
		t.Fatal("bench-global/v1 accepted")
	}
	for _, want := range []string{"host_profiles", "bench-global/v2", "MEASUREMENT.md"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("v1 rejection message lacks %q: %v", want, err)
		}
	}
}

// TestParseBaselineReal validates the repository's actual snapshot, so a
// malformed BENCH_global.json edit fails here before it reaches CI.
func TestParseBaselineReal(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_global.json")
	if err != nil {
		t.Skipf("snapshot not found: %v", err)
	}
	b, err := parseBaseline(raw)
	if err != nil {
		t.Fatalf("BENCH_global.json failed schema validation: %v", err)
	}
	for _, name := range []string{"BenchmarkBatchEngine", "BenchmarkIC0Apply", "BenchmarkPCGNoAlloc"} {
		if b.Benchmarks[name] == nil {
			t.Errorf("snapshot lost the %s entry the CI gate pins", name)
		}
	}
}

const benchOutput = `
goos: linux
goarch: amd64
BenchmarkBatchEngine-4   	     682	   900000 ns/op	         1.000 hit-rate	 2101736 B/op	    1192 allocs/op
BenchmarkPCGNoAlloc     	     463	  2100000 ns/op	       0 B/op	       0 allocs/op
BenchmarkPCGNoAlloc-4   	     463	  1900000 ns/op	       0 B/op	       0 allocs/op
BenchmarkIC0Apply/narrowDAG/serial-4         	     492	   2500000 ns/op	       0 B/op	       0 allocs/op
BenchmarkIC0Apply/wideDAG/levelsched-pool-4  	     924	   1100000 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-4        	     100	   5000000 ns/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	ms := parseBenchOutput(benchOutput)
	if len(ms) != 5 {
		t.Fatalf("parsed %d measurements, want 5: %v", len(ms), ms)
	}
	pcg := ms["BenchmarkPCGNoAlloc"]
	if pcg == nil || pcg.MinNs != 1900000 {
		t.Errorf("PCGNoAlloc min ns/op not folded across -cpu runs: %+v", pcg)
	}
	if !pcg.HasAllocs || pcg.MaxAllocs != 0 {
		t.Errorf("PCGNoAlloc allocs: %+v", pcg)
	}
	if be := ms["BenchmarkBatchEngine"]; be == nil || !be.HasAllocs || be.MaxAllocs != 1192 {
		t.Errorf("BatchEngine measurement: %+v", be)
	}
	if nm := ms["BenchmarkNoMem"]; nm == nil || nm.HasAllocs {
		t.Errorf("line without -benchmem columns parsed allocs: %+v", nm)
	}
	if sub := ms["BenchmarkIC0Apply/narrowDAG/serial"]; sub == nil || sub.MinNs != 2500000 {
		t.Errorf("sub-benchmark name not preserved: %+v", ms)
	}
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	base, err := parseBaseline([]byte(goodBaseline))
	if err != nil {
		t.Fatal(err)
	}
	required := []string{"BenchmarkBatchEngine", "BenchmarkPCGNoAlloc", "BenchmarkIC0Apply"}
	failures, report := check(base, parseBenchOutput(benchOutput), 3.0, required)
	if failures != 0 {
		t.Fatalf("clean run reported %d failures:\n%s", failures, report)
	}
}

func TestCheckFailsOnInjectedRegressions(t *testing.T) {
	base, err := parseBaseline([]byte(goodBaseline))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]struct {
		output string
		want   string
	}{
		"ns/op regression": {
			output: strings.Replace(benchOutput, "682	   900000 ns/op", "682	   3100000 ns/op", 1),
			want:   "BenchmarkBatchEngine: 3100000 ns/op exceeds",
		},
		"sub-benchmark regression": {
			output: strings.Replace(benchOutput, "492	   2500000 ns/op", "492	   9500000 ns/op", 1),
			want:   "BenchmarkIC0Apply/narrowDAG/serial: 9500000 ns/op exceeds",
		},
		"allocs floor broken at one cpu count": {
			output: strings.Replace(benchOutput, "463	  2100000 ns/op	       0 B/op	       0 allocs/op",
				"463	  2100000 ns/op	      64 B/op	       2 allocs/op", 1),
			want: "2.0 allocs/op exceeds the pinned floor",
		},
		"allocs not reported": {
			output: strings.ReplaceAll(benchOutput, "	       0 B/op	       0 allocs/op", ""),
			want:   "did not report allocs",
		},
		"required benchmark missing": {
			output: strings.ReplaceAll(benchOutput, "BenchmarkPCGNoAlloc", "BenchmarkPCGRenamed"),
			want:   "required benchmark BenchmarkPCGNoAlloc was not measured",
		},
		"required sub-benchmark dropped": {
			output: strings.ReplaceAll(benchOutput, "BenchmarkIC0Apply/narrowDAG/serial", "BenchmarkIC0Apply/renamedDAG/serial"),
			want:   "required benchmark BenchmarkIC0Apply was not measured against its BenchmarkIC0Apply/narrowDAG/serial baseline",
		},
	}
	required := []string{"BenchmarkBatchEngine", "BenchmarkPCGNoAlloc", "BenchmarkIC0Apply"}
	for name, tc := range cases {
		failures, report := check(base, parseBenchOutput(tc.output), 3.0, required)
		if failures == 0 {
			t.Errorf("%s: gate did not fail", name)
			continue
		}
		if !strings.Contains(report, tc.want) {
			t.Errorf("%s: report lacks %q:\n%s", name, tc.want, report)
		}
	}
}

// TestDuplicateKeysRejected: encoding/json keeps the last duplicate key, so
// a snapshot with two entries of the same name would silently shadow one
// baseline; the token-level scan must reject it at any nesting depth.
func TestDuplicateKeysRejected(t *testing.T) {
	cases := map[string]string{
		"duplicate benchmark entry": `{"schema":"bench-global/v2","pr":5,"benchmarks":{
			"BenchmarkX":{"unit":"ns/op","value":1000},
			"BenchmarkX":{"unit":"ns/op","value":9999999}}}`,
		"duplicate sub-benchmark value": `{"schema":"bench-global/v2","pr":5,"benchmarks":{
			"BenchmarkX":{"unit":"ns/op","values":{"a":1000,"a":9999999}}}}`,
		"duplicate entry field": `{"schema":"bench-global/v2","pr":5,"benchmarks":{
			"BenchmarkX":{"unit":"ns/op","value":1000,"value":9999999}}}`,
		"duplicate top-level key": `{"schema":"bench-global/v2","pr":5,"pr":6,"benchmarks":{
			"BenchmarkX":{"unit":"ns/op","value":1000}}}`,
	}
	for name, raw := range cases {
		if _, err := parseBaseline([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.Contains(err.Error(), "duplicate key") {
			t.Errorf("%s: wrong error: %v", name, err)
		}
	}
}

// TestRequiredNeedsAllocsFloor: a -require entry whose baseline pins no
// allocs_per_op would gate ns/op but let allocation regressions through.
func TestRequiredNeedsAllocsFloor(t *testing.T) {
	base, err := parseBaseline([]byte(`{"schema":"bench-global/v2","pr":5,"benchmarks":{
		"BenchmarkX":{"unit":"ns/op","value":1000000}}}`))
	if err != nil {
		t.Fatal(err)
	}
	measured := parseBenchOutput("BenchmarkX-4 	 682 	 900000 ns/op 	 0 B/op 	 0 allocs/op")
	failures, report := check(base, measured, 3.0, []string{"BenchmarkX"})
	if failures == 0 || !strings.Contains(report, "pins no allocs_per_op floor") {
		t.Fatalf("required entry without an allocs floor passed the gate:\n%s", report)
	}
	if failures, report := check(base, measured, 3.0, nil); failures != 0 {
		t.Errorf("non-required entry without an allocs floor should pass:\n%s", report)
	}
}

// TestReportOrderStable: two runs over the same inputs must produce
// byte-identical reports (sorted iteration, not map order).
func TestReportOrderStable(t *testing.T) {
	base, err := parseBaseline([]byte(goodBaseline))
	if err != nil {
		t.Fatal(err)
	}
	_, first := check(base, parseBenchOutput(benchOutput), 3.0, nil)
	for i := 0; i < 10; i++ {
		if _, again := check(base, parseBenchOutput(benchOutput), 3.0, nil); again != first {
			t.Fatalf("report order unstable:\n--- first\n%s\n--- run %d\n%s", first, i, again)
		}
	}
	order := []string{
		"BenchmarkBatchEngine:",
		"BenchmarkIC0Apply/narrowDAG/serial:",
		"BenchmarkIC0Apply/wideDAG/levelsched-pool:",
		"BenchmarkPCGNoAlloc:",
	}
	last := -1
	for _, name := range order {
		at := strings.Index(first, name)
		if at < 0 {
			t.Fatalf("report lacks %s:\n%s", name, first)
		}
		if at < last {
			t.Fatalf("report names out of sorted order (%s):\n%s", name, first)
		}
		last = at
	}
}

// TestCheckToleranceBoundary: the limit is tolerance × baseline, inclusive.
func TestCheckToleranceBoundary(t *testing.T) {
	base, err := parseBaseline([]byte(`{"schema":"bench-global/v2","pr":5,"benchmarks":{"BenchmarkX":{"unit":"ns/op","value":1000}}}`))
	if err != nil {
		t.Fatal(err)
	}
	at := parseBenchOutput("BenchmarkX-4 	 10 	 3000 ns/op")
	if failures, report := check(base, at, 3.0, nil); failures != 0 {
		t.Errorf("exactly at the limit should pass:\n%s", report)
	}
	over := parseBenchOutput("BenchmarkX-4 	 10 	 3001 ns/op")
	if failures, _ := check(base, over, 3.0, nil); failures != 1 {
		t.Error("just over the limit should fail")
	}
}
