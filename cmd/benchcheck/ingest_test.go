package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/solver/tuning"
)

// ingestBaseline pins a linux/amd64/n1 profile with bench rows, a loadgen
// section, and crossover rows, mirroring the real snapshot's shape.
const ingestBaseline = `{
  "schema": "bench-global/v2",
  "pr": 10,
  "benchmarks": {
    "BenchmarkBatchEngine": { "unit": "ns/op", "value": 900000, "allocs_per_op": 4096 }
  },
  "host_profiles": {
    "linux/amd64/n1": {
      "goos": "linux", "goarch": "amd64", "nproc": 1,
      "benchmarks": {
        "BenchmarkBatchEngine": { "unit": "ns/op", "value": 900000, "allocs_per_op": 4096 },
        "BenchmarkIC0Apply": { "unit": "ns/op", "values": {
          "narrowDAG-multicolor/serial": 1300000, "narrowDAG-multicolor/levelsched-pool": 1250000 } }
      },
      "loadgen": {
        "solve": { "count": 1000, "errors": 0, "rejected": 0,
          "p50_ms": 20, "p95_ms": 60, "p99_ms": 100, "max_ms": 200, "throughput_rps": 40 }
      },
      "tuning": {
        "precond_crossover": [ { "dofs": 2709, "ic0_warm_ms": 14, "bj3_warm_ms": 20 } ],
        "multicolor_apply_speedup": 1.04
      }
    }
  }
}`

const ingestBenchOutput = `
goos: linux
goarch: amd64
BenchmarkBatchEngine   	     682	   850000 ns/op	 2101736 B/op	    1192 allocs/op
BenchmarkIC0Apply/narrowDAG-multicolor/serial        	     492	   1280000 ns/op	       0 B/op	       0 allocs/op
BenchmarkIC0Apply/narrowDAG-multicolor/levelsched-pool 	     924	   1210000 ns/op	       0 B/op	       0 allocs/op
BenchmarkBlockedMulVec/blocked/serial        	     500	   830000 ns/op	       0 B/op	       0 allocs/op
BenchmarkBlockedMulVec/blocked/par           	     500	   910000 ns/op	      64 B/op	      10 allocs/op
PASS
`

const ingestLoadgenReport = `{
  "schema": "loadgen-report/v1",
  "target": "http://127.0.0.1:0",
  "endpoints": {
    "solve": { "count": 2000, "errors": 0, "rejected": 3,
      "p50_ms": 18, "p95_ms": 55, "p99_ms": 90, "max_ms": 180, "throughput_rps": 45 },
    "batch": { "count": 200, "errors": 0, "rejected": 0,
      "p50_ms": 80, "p95_ms": 150, "p99_ms": 220, "max_ms": 400, "throughput_rps": 4 }
  }
}`

// writeIngestFixture lays a baseline + artifacts into a temp dir and returns
// their paths plus the parsed baseline.
func writeIngestFixture(t *testing.T) (dir, basePath string, raw []byte, base *baseline) {
	t.Helper()
	dir = t.TempDir()
	basePath = filepath.Join(dir, "BENCH_global.json")
	raw = []byte(ingestBaseline)
	if err := os.WriteFile(basePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := parseBaseline(raw)
	if err != nil {
		t.Fatal(err)
	}
	return dir, basePath, raw, base
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestIngestRoundTrip is the acceptance proof for the measurement loop: a
// bench artifact and a loadgen report fold into the host profile, the
// written baseline re-parses, the tuning ratios are re-derived from the new
// rows, the crossover rows survive untouched, and internal/solver/tuning
// resolves thresholds from the written profile.
func TestIngestRoundTrip(t *testing.T) {
	dir, basePath, raw, base := writeIngestFixture(t)
	bench := writeFile(t, dir, "bench.txt", ingestBenchOutput)
	report := writeFile(t, dir, "loadgen.json", ingestLoadgenReport)
	snapshot := filepath.Join(dir, "snapshot.json")

	err := runIngest(basePath, raw, base, ingestConfig{
		Files:     []string{bench, report},
		Profile:   "linux/amd64/n1",
		Tolerance: 3.0,
		Write:     true,
		Snapshot:  snapshot,
	})
	if err != nil {
		t.Fatalf("runIngest: %v", err)
	}

	rewritten, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := parseBaseline(rewritten)
	if err != nil {
		t.Fatalf("written baseline fails its own schema: %v", err)
	}
	p := base2.HostProfiles["linux/amd64/n1"]
	if p == nil {
		t.Fatal("written baseline lost the host profile")
	}
	if e := p.Benchmarks["BenchmarkBatchEngine"]; e == nil || e.Value == nil || *e.Value != 850000 {
		t.Errorf("BatchEngine not updated: %+v", e)
	}
	if e := p.Benchmarks["BenchmarkBlockedMulVec"]; e == nil || e.Values["blocked/par"] != 910000 {
		t.Errorf("BlockedMulVec rows not ingested: %+v", e)
	}
	if p.Loadgen["batch"] == nil || p.Loadgen["batch"].P99MS != 220 {
		t.Errorf("loadgen batch endpoint not ingested: %+v", p.Loadgen)
	}
	if p.Loadgen["solve"] == nil || p.Loadgen["solve"].P99MS != 90 {
		t.Errorf("loadgen solve endpoint not refreshed: %+v", p.Loadgen)
	}
	if p.Tuning == nil || len(p.Tuning.PrecondCrossover) != 1 || p.Tuning.PrecondCrossover[0].DoFs != 2709 {
		t.Errorf("crossover rows did not survive ingest: %+v", p.Tuning)
	}
	// 1280000/1210000 = 1.06, 830000/910000 = 0.91 — re-derived from the
	// fresh rows, not the pinned 1.04.
	if p.Tuning.MulticolorApplySpeedup != 1.06 {
		t.Errorf("MulticolorApplySpeedup = %v, want 1.06", p.Tuning.MulticolorApplySpeedup)
	}
	if p.Tuning.MatvecParSpeedup != 0.91 {
		t.Errorf("MatvecParSpeedup = %v, want 0.91", p.Tuning.MatvecParSpeedup)
	}
	if p.UpdatedPR != base.PR {
		t.Errorf("UpdatedPR = %d, want %d", p.UpdatedPR, base.PR)
	}
	// The untouched parts of the file keep their bytes: key order intact.
	if at, schemaAt := strings.Index(string(rewritten), `"benchmarks"`), strings.Index(string(rewritten), `"schema"`); at < schemaAt {
		t.Error("splice reordered top-level keys")
	}

	// The written profile drives the solver knobs end to end.
	tun := tuning.Derive(p, true)
	if tun.IC0Threshold != 2500 {
		t.Errorf("derived IC0Threshold = %d, want 2500", tun.IC0Threshold)
	}
	if tun.MulticolorWidth != 0 || tun.Workers != 1 {
		t.Errorf("derived width/workers = %d/%d, want 0/1 on n1", tun.MulticolorWidth, tun.Workers)
	}

	// The -snapshot artifact is a bare host_profiles object tuning can parse.
	snapRaw, err := os.ReadFile(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	snapSet, err := tuning.Parse(snapRaw)
	if err != nil {
		t.Fatalf("snapshot does not re-parse: %v", err)
	}
	if snapSet["linux/amd64/n1"] == nil {
		t.Error("snapshot lost the profile")
	}
}

// TestIngestGateFailures: injected regressions must exit non-zero and leave
// both the baseline and the snapshot untouched.
func TestIngestGateFailures(t *testing.T) {
	cases := map[string]struct {
		artifact string // file content
		json     bool
		want     string
	}{
		"ns/op regression": {
			artifact: strings.Replace(ingestBenchOutput, "682	   850000 ns/op", "682	   2800000 ns/op", 1),
			want:     "ingest regression",
		},
		"allocs ceiling broken": {
			artifact: strings.Replace(ingestBenchOutput, "1192 allocs/op", "9000 allocs/op", 1),
			want:     "ingest regression",
		},
		"loadgen p99 regression": {
			artifact: strings.Replace(ingestLoadgenReport, `"p99_ms": 90`, `"p99_ms": 400`, 1),
			json:     true,
			want:     "ingest regression",
		},
		"unknown JSON artifact": {
			artifact: `{"schema":"something/v1","endpoints":{"solve":{}}}`,
			json:     true,
			want:     "loadgen-report/v1",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			dir, basePath, raw, base := writeIngestFixture(t)
			ext := ".txt"
			if tc.json {
				ext = ".json"
			}
			artifact := writeFile(t, dir, "artifact"+ext, tc.artifact)
			snapshot := filepath.Join(dir, "snapshot.json")
			err := runIngest(basePath, raw, base, ingestConfig{
				Files:     []string{artifact},
				Profile:   "linux/amd64/n1",
				Tolerance: 3.0,
				Write:     true,
				Snapshot:  snapshot,
			})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
			after, readErr := os.ReadFile(basePath)
			if readErr != nil || string(after) != ingestBaseline {
				t.Error("failed gate rewrote the baseline")
			}
			if _, statErr := os.Stat(snapshot); statErr == nil {
				t.Error("failed gate wrote the snapshot")
			}
		})
	}
}

// TestIngestFirstMeasurementNewProfile: a platform with no pinned profile
// has nothing to gate against; ingest creates the profile.
func TestIngestFirstMeasurementNewProfile(t *testing.T) {
	dir, basePath, raw, base := writeIngestFixture(t)
	bench := writeFile(t, dir, "bench.txt", ingestBenchOutput)
	err := runIngest(basePath, raw, base, ingestConfig{
		Files:     []string{bench},
		Profile:   "darwin/arm64/n8",
		Tolerance: 3.0,
		Write:     true,
	})
	if err != nil {
		t.Fatalf("runIngest: %v", err)
	}
	rewritten, _ := os.ReadFile(basePath)
	base2, err := parseBaseline(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	p := base2.HostProfiles["darwin/arm64/n8"]
	if p == nil || p.GOOS != "darwin" || p.NProc != 8 {
		t.Fatalf("new profile not created: %+v", p)
	}
	if base2.HostProfiles["linux/amd64/n1"] == nil {
		t.Error("existing profile lost")
	}
}

// TestIngestInexactGate: measurements from an unseen core count gate against
// the nearest same-platform profile (the tolerance absorbs the host gap).
func TestIngestInexactGate(t *testing.T) {
	dir, basePath, raw, base := writeIngestFixture(t)
	slow := strings.Replace(ingestBenchOutput, "682	   850000 ns/op", "682	   2800000 ns/op", 1)
	bench := writeFile(t, dir, "bench.txt", slow)
	err := runIngest(basePath, raw, base, ingestConfig{
		Files:     []string{bench},
		Profile:   "linux/amd64/n4",
		Tolerance: 3.0,
	})
	if err == nil || !strings.Contains(err.Error(), "ingest regression") {
		t.Fatalf("regression vs nearest profile not gated: %v", err)
	}
}

func TestSplitProfileKey(t *testing.T) {
	goos, goarch, nproc, err := splitProfileKey("linux/amd64/n4")
	if err != nil || goos != "linux" || goarch != "amd64" || nproc != 4 {
		t.Errorf("splitProfileKey = %s/%s/%d, %v", goos, goarch, nproc, err)
	}
	for _, bad := range []string{"", "linux/amd64", "linux/amd64/4", "linux/amd64/n0", "linux/amd64/nx", "/amd64/n4"} {
		if _, _, _, err := splitProfileKey(bad); err == nil {
			t.Errorf("splitProfileKey(%q) accepted", bad)
		}
	}
}

func TestFoldBenchEntries(t *testing.T) {
	folded := foldBenchEntries(parseBenchOutput(ingestBenchOutput))
	if len(folded) != 3 {
		t.Fatalf("folded %d entries, want 3: %v", len(folded), folded)
	}
	be := folded["BenchmarkBatchEngine"]
	if be == nil || be.Value == nil || *be.Value != 850000 || be.AllocsPerOp == nil || *be.AllocsPerOp != 1192 {
		t.Errorf("BatchEngine entry: %+v", be)
	}
	mv := folded["BenchmarkBlockedMulVec"]
	if mv == nil || mv.Value != nil || len(mv.Values) != 2 || mv.Values["blocked/serial"] != 830000 {
		t.Errorf("BlockedMulVec entry: %+v", mv)
	}
	// Worst allocs across sub rows becomes the entry ceiling.
	if mv.AllocsPerOp == nil || *mv.AllocsPerOp != 10 {
		t.Errorf("BlockedMulVec allocs ceiling: %+v", mv.AllocsPerOp)
	}
}

// TestSpliceHostProfiles: replace-in-place keeps surrounding bytes; append
// adds the section before the closing brace.
func TestSpliceHostProfiles(t *testing.T) {
	set := tuning.Set{"linux/amd64/n2": &tuning.HostProfile{GOOS: "linux", GOARCH: "amd64", NProc: 2}}
	replaced, err := spliceHostProfiles([]byte(ingestBaseline), set)
	if err != nil {
		t.Fatal(err)
	}
	base, err := parseBaseline(replaced)
	if err != nil {
		t.Fatalf("spliced baseline invalid: %v", err)
	}
	if len(base.HostProfiles) != 1 || base.HostProfiles["linux/amd64/n2"] == nil {
		t.Errorf("replace did not swap the section: %v", base.HostProfiles)
	}

	noSection := `{
  "schema": "bench-global/v2",
  "pr": 10,
  "benchmarks": { "BenchmarkX": { "unit": "ns/op", "value": 1 } }
}`
	appended, err := spliceHostProfiles([]byte(noSection), set)
	if err != nil {
		t.Fatal(err)
	}
	base, err = parseBaseline(appended)
	if err != nil {
		t.Fatalf("appended baseline invalid: %v", err)
	}
	if base.HostProfiles["linux/amd64/n2"] == nil {
		t.Error("append did not add the section")
	}
	var asMap map[string]json.RawMessage
	if err := json.Unmarshal(appended, &asMap); err != nil {
		t.Fatalf("appended file is not valid JSON: %v", err)
	}
}
