// Command serve exposes the MORE-Stress batch engine over HTTP: scenario
// solves share cached unit-block ROMs (the one-shot local stage runs once
// per distinct unit cell, even under concurrent requests) and repeated
// direct solves of the same lattice share a Cholesky factorization.
//
// Endpoints:
//
//	POST /solve   one scenario            {"pitch":15,"rows":10,"cols":10,"deltaT":-250,"gridSamples":100}
//	POST /batch   many scenarios          {"jobs":[{...},{...}]}
//	GET  /stats   engine + cache counters
//	GET  /healthz liveness probe
//
// Usage:
//
//	serve [-addr :8080] [-workers N] [-cache-entries 8] [-cache-dir DIR]
package main

import (
	"flag"
	"log"
	"net/http"

	morestress "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 8, "in-memory ROM cache capacity")
	cacheDir := flag.String("cache-dir", "", "directory for ROM disk spill (empty disables)")
	flag.Parse()

	engine := morestress.NewEngine(morestress.EngineOptions{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
	})
	srv := newServer(engine)
	log.Printf("serve: listening on %s (cache entries %d, spill %q)", *addr, *cacheEntries, *cacheDir)
	if err := http.ListenAndServe(*addr, srv.routes()); err != nil {
		log.Fatal(err)
	}
}
