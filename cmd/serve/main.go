// Command serve exposes the MORE-Stress batch engine over HTTP: scenario
// solves share cached unit-block ROMs (the one-shot local stage runs once
// per distinct unit cell, even under concurrent requests) and repeated
// direct solves of the same lattice share a Cholesky factorization. The ROM
// cache is admitted by bytes — each model's MemoryBytes against the
// -cache-bytes budget — so one large lattice cannot evict a working set of
// small ones.
//
// # Synchronous endpoints
//
//	POST /solve   one scenario            {"pitch":15,"rows":10,"cols":10,"deltaT":-250,"gridSamples":100}
//	POST /batch   many scenarios          {"jobs":[{...},{...}]}
//
// # Asynchronous job queue
//
// A /batch caller holds its connection for the whole solve. For long ΔT
// sweeps, submit the same payload to the job queue instead and get an ID
// back immediately:
//
//	POST   /jobs              submit; 202 + {"id":...}, 429 when the queue is full
//	GET    /jobs/{id}         poll state, progress, timing; results once finished
//	GET    /jobs/{id}/events  Server-Sent Events stream of the lifecycle
//	DELETE /jobs/{id}         cancel (pending: never runs; running: stops at
//	                          the next scenario boundary; finished: 409)
//
// The job lifecycle:
//
//	pending ──▶ running ──▶ done | failed
//	   │            │
//	   └────────────┴─────▶ cancelled
//
// Finished jobs (and their results) are kept for -job-ttl, then garbage-
// collected; polling an expired ID returns 404.
//
// A polling round trip:
//
//	$ curl -s localhost:8080/jobs -d '{"jobs":[{"rows":40,"cols":40,"deltaT":-250},
//	                                           {"rows":40,"cols":40,"deltaT":-200}]}'
//	{"id":"f9a31c0e21d4b007","state":"pending","queueDepth":1,
//	 "poll":"/jobs/f9a31c0e21d4b007","events":"/jobs/f9a31c0e21d4b007/events"}
//	$ curl -s localhost:8080/jobs/f9a31c0e21d4b007
//	{"id":"f9a31c0e21d4b007","state":"running","total":2,"completed":1,...}
//	$ curl -s localhost:8080/jobs/f9a31c0e21d4b007      # later
//	{"id":"f9a31c0e21d4b007","state":"done","total":2,"completed":2,
//	 "results":[{"converged":true,"maxVonMises":...},...]}
//
// Or stream it (one "state" event per transition, one "scenario" event per
// completed scenario):
//
//	$ curl -sN localhost:8080/jobs/f9a31c0e21d4b007/events
//	event: state
//	data: {"type":"state","jobId":"f9a31c0e21d4b007","state":"pending",...}
//	event: state
//	data: {"type":"state","jobId":"f9a31c0e21d4b007","state":"running",...}
//	event: scenario
//	data: {"type":"scenario","jobId":"f9a31c0e21d4b007","state":"running","scenario":0,"completed":1,"total":2}
//	...
//	event: state
//	data: {"type":"state","jobId":"f9a31c0e21d4b007","state":"done","completed":2,"total":2}
//
// # Observability
//
//	GET /stats    engine, cache (bytes in use vs budget), queue counters
//	              (depth, running, throughput), and per-shard counters
//	              under -shards > 1
//	GET /healthz  liveness probe: 200 whenever the process is up
//	GET /readyz   readiness probe: 200 only once journal recovery finished,
//	              while the queue accepts jobs, and while the journal (if
//	              any) still persists them — the probe cmd/router and any
//	              fleet scheduler should gate traffic on
//
// # Sharding
//
// With -shards N > 1 the process runs N independent engines behind one
// listener, each owning the slice of lattice keyspace a rendezvous-hash
// table assigns it (see internal/router). Requests route by lattice key —
// the same string the engine's assembly, preconditioner, factor, and
// warm-start caches are keyed by — so each lattice's cached state lives in
// exactly one shard and the lattice-keyed caches stop contending. The
// content-addressed ROM cache stays shared across shards (ROMs are
// lattice-independent). -workers is split evenly across shards. /stats
// breaks the solver counters out per shard under "shards".
//
// Usage:
//
//	serve [-addr :8080] [-workers N] [-shards 1]
//	      [-cache-bytes 2147483648] [-cache-entries 0] [-cache-dir DIR]
//	      [-queue-depth 64] [-job-workers 1] [-job-ttl 10m]
//	      [-job-field-budget 134217728] [-journal-dir DIR]
//	      [-precond auto] [-warm-start=true] [-assembly-bytes 1073741824]
//	      [-tuning FILE]
//
// Defaults: -cache-bytes is 2 GiB (romcache.DefaultMaxBytes); -cache-entries
// is 0, meaning the byte budget alone governs admission (set it to add a
// hard model-count cap on top); -queue-depth bounds the async backlog
// (submissions beyond it get 429); -job-workers is the number of jobs
// solving concurrently (scenarios inside a job run in order; the engine
// parallelizes within each solve); -job-ttl is the finished-result
// retention; -job-field-budget caps the aggregate field samples of all
// tracked async jobs, queued through retained (default 2²⁷ ≈ 1 GiB of
// float64 samples — results held for the TTL count against it, so parked
// results cannot exhaust memory; over-budget submissions get 429).
//
// # Durability
//
// With -journal-dir set, an accepted POST /jobs is a promise that survives
// kill -9: the submission is fsynced to a write-ahead log before the 202 is
// sent, lifecycle transitions and per-scenario results follow, and on
// startup the server replays the log — jobs that never finished re-enter
// the queue in their original order under their original IDs (scenario
// solves are deterministic, so re-running loses nothing), finished jobs
// come back with their results and keep aging against -job-ttl. The
// listener is up during the replay but not ready: /healthz answers 200,
// /readyz and the traffic-mutating endpoints answer 503 until recovery
// completes, so a router never races the replay. /stats reports the journal
// under "journal": size, append and compaction counters, and what recovery
// reconstructed. The log compacts itself once it outgrows a few MiB; torn
// tails from a mid-write crash are truncated on replay. Multiple replicas
// may share one -cache-dir (spills are checksummed and single-writer
// locked) but each needs its own -journal-dir.
//
// # Global-stage solver tuning
//
// The reduced global solve dominates warm-cache request time, so the engine
// assembles each lattice's global matrix once (shared by every scenario on
// that lattice), defaults the iterative solvers to preconditioned CG/GMRES
// (-precond auto picks block-Jacobi-3 for small lattices and IC0 for large
// ones; per-request "precond" overrides), and warm-starts each iterative
// solve from the latest solution of the same lattice (-warm-start=false
// disables). GET /stats reports the machinery under "solver": assemblies
// built vs reused, warm-start hit rate, divergence fallbacks, and total
// iterations; per-scenario SSE events carry iterations, residual, precond,
// and warmStart. See docs/SOLVER_TUNING.md for guidance and measurements.
//
// The thresholds behind "auto" are measured, not guessed: at startup the
// process derives the IC0 crossover, multicolor ordering width, and worker
// default from the ingested host profile matching this GOOS/GOARCH/nproc
// (-tuning FILE points at a bench-global/v2 baseline or bare host_profiles
// snapshot; empty uses the embedded snapshot; hand-set constants remain the
// fallback when no profile matches). See docs/MEASUREMENT.md for how
// profiles are produced and ingested.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	morestress "repro"
	"repro/internal/romcache"
	"repro/internal/router"
	"repro/internal/serveapi"
	"repro/internal/solver/tuning"
	"repro/internal/wal"
)

//stressvet:gang -- one goroutine carries ListenAndServe so main can select on shutdown signals
func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent engine jobs (0 = GOMAXPROCS), split across shards")
	shards := flag.Int("shards", 1,
		"independent engine shards behind this listener; requests route by lattice key so each lattice's caches live in exactly one shard")
	cacheBytes := flag.Int64("cache-bytes", romcache.DefaultMaxBytes, "in-memory ROM cache byte budget")
	cacheEntries := flag.Int("cache-entries", 0, "optional ROM cache entry cap on top of the byte budget (0 = bytes only)")
	cacheDir := flag.String("cache-dir", "", "directory for ROM disk spill (empty disables)")
	queueDepth := flag.Int("queue-depth", 64, "async job queue capacity (backlog beyond it gets 429)")
	jobWorkers := flag.Int("job-workers", 1, "async jobs solving concurrently")
	jobTTL := flag.Duration("job-ttl", 10*time.Minute, "finished async job retention before GC")
	jobFieldBudget := flag.Int64("job-field-budget", serveapi.DefaultJobFieldBudget,
		"aggregate field samples across tracked async jobs, 429 beyond it (0 = unlimited)")
	journalDir := flag.String("journal-dir", "",
		"directory for the async job journal: accepted jobs are fsynced and recovered after a crash (empty disables durability)")
	precondFlag := flag.String("precond", "auto",
		"default iterative preconditioner: auto, jacobi, block-jacobi3, ic0, or none (per-request \"precond\" overrides)")
	orderingFlag := flag.String("ordering", "auto",
		"default IC0 factor ordering: auto, natural, rcm, or multicolor (per-request \"ordering\" overrides)")
	precisionFlag := flag.String("precision", "auto",
		"default IC0 factor storage precision: auto, float64, or float32 (per-request \"precision\" overrides)")
	warmStart := flag.Bool("warm-start", true,
		"seed iterative solves with the latest solution on the same lattice")
	tuningPath := flag.String("tuning", "",
		"bench-global/v2 file (or bare host_profiles snapshot) to derive solver thresholds from (empty = embedded snapshot, hand-set defaults when no profile matches)")
	assemblyBytes := flag.Int64("assembly-bytes", 1<<30,
		"byte budget of the assemble-once cache of reduced global matrices (0 = entry-count bound only)")
	flag.Parse()

	precond, err := morestress.ParsePrecond(*precondFlag)
	if err != nil {
		log.Fatal(err)
	}
	ordering, err := morestress.ParseOrdering(*orderingFlag)
	if err != nil {
		log.Fatal(err)
	}
	precision, err := morestress.ParsePrecision(*precisionFlag)
	if err != nil {
		log.Fatal(err)
	}
	// Resolve measured solver thresholds for this host before any engine is
	// built: NewEngine snapshots solver.DefaultWorkers at construction. An
	// explicit -tuning file that fails to load is an operator error; a stale
	// embedded snapshot just falls back to the hand-set defaults.
	tun, err := tuning.Startup(*tuningPath)
	if err != nil {
		if *tuningPath != "" {
			log.Fatalf("serve: -tuning %s: %v", *tuningPath, err)
		}
		log.Printf("serve: tuning snapshot unusable, keeping hand-set defaults: %v", err)
	}
	log.Printf("serve: tuning: ic0 threshold %d, multicolor width %d, workers %d (%s)",
		tun.IC0Threshold, tun.MulticolorWidth, tun.Workers, tun.Source)
	engineOpt := morestress.EngineOptions{
		Workers:          *workers,
		CacheBytes:       *cacheBytes,
		CacheEntries:     *cacheEntries,
		CacheDir:         *cacheDir,
		DisableWarmStart: !*warmStart,
		AssemblyBytes:    *assemblyBytes,
	}
	var solver morestress.Solver
	var perShard func() []morestress.EngineStats
	if *shards > 1 {
		sh := router.NewShards(*shards, engineOpt)
		solver, perShard = sh, sh.PerShard
	} else {
		solver = morestress.NewEngine(engineOpt)
	}
	var journal *wal.Log
	if *journalDir != "" {
		journal, err = wal.Open(*journalDir, wal.Options{})
		if err != nil {
			log.Fatal(err)
		}
	}
	queue, err := serveapi.NewQueue(solver, *queueDepth, *jobWorkers, *jobTTL, *jobFieldBudget, journal)
	if err != nil {
		log.Fatal(err)
	}
	srv := serveapi.New(solver, queue)
	srv.Journal = journal
	srv.Precond = precond
	srv.Ordering = ordering
	srv.Precision = precision
	srv.PerShard = perShard

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// then close the queue so queued jobs land in a terminal state and
	// in-flight ones stop at their next scenario boundary.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Routes()}
	errc := make(chan error, 1)
	if journal != nil {
		// The listener comes up before the journal replay so probes can see
		// the process alive (/healthz 200) but not yet live (/readyz 503):
		// a router keeps this replica's keyspace on its failover shard until
		// recovery completes instead of timing the process out.
		srv.BeginRecovery()
	}
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serve: listening on %s (shards %d, cache %d MiB budget, spill %q, queue depth %d, job ttl %v, journal %q)",
		*addr, *shards, *cacheBytes>>20, *cacheDir, *queueDepth, *jobTTL, *journalDir)
	if journal != nil {
		// Replay the journal, then flip ready: jobs accepted by the previous
		// process re-enter the queue (or come back finished) under their
		// original IDs.
		rec, err := queue.Recover()
		if err != nil {
			queue.Close()
			journal.Close()
			log.Fatalf("serve: journal recovery: %v", err)
		}
		srv.FinishRecovery()
		log.Printf("serve: journal %s: %d records replayed, %d jobs requeued, %d restored, %d expired; ready",
			*journalDir, rec.Records, rec.Requeued, rec.Restored, rec.Expired)
	}
	select {
	case err := <-errc:
		// The listener died on its own (port taken, socket error): still
		// close the queue so running jobs stop at a scenario boundary and
		// journaled state lands, instead of abandoning them mid-solve.
		srv.BeginShutdown()
		queue.Close()
		if journal != nil {
			journal.Close()
		}
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("serve: shutting down")
	// Release SSE streams first: subscribers never see queue events during
	// shutdown, so without this Shutdown would wait out its whole deadline
	// on any attached stream.
	srv.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("serve: shutdown: %v", err)
	}
	queue.Close()
	if journal != nil {
		journal.Close()
	}
}
