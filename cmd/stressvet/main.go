// Command stressvet is the project's static-analysis multichecker: it runs
// the internal/lint analyzer suite — noalloc, determinism, floatcmp,
// lockcheck, workerbound — over the module's packages and exits non-zero on
// any finding, turning the hot-path, determinism, and cache-discipline
// invariants into build-time contracts. With -escape it additionally builds
// the packages with -gcflags=-m and fails if the compiler proves a heap
// allocation inside any //stressvet:noalloc function (the static form of
// the runtime allocs/op assertions).
//
// Usage:
//
//	go run ./cmd/stressvet ./...                 # AST analyzers
//	go run ./cmd/stressvet -escape ./...         # + compiler escape gate
//	go run ./cmd/stressvet -disable floatcmp ./internal/solver/
//	go run ./cmd/stressvet -list
//
// Annotation grammar and suppression rules: docs/STATIC_ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stressvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	escape := fs.Bool("escape", false, "also run the -gcflags=-m escape gate over //stressvet:noalloc functions")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "module directory to analyze from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	disabled := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	known := make(map[string]bool)
	var analyzers []*lint.Analyzer
	for _, a := range all {
		known[a.Name] = true
		if !disabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	for name := range disabled {
		if !known[name] {
			fmt.Fprintf(stderr, "stressvet: unknown analyzer %q in -disable (have: noalloc, determinism, floatcmp, lockcheck, workerbound)\n", name)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.LoadPatterns(*dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "stressvet:", err)
		return 2
	}
	findings := lint.RunPackages(pkgs, analyzers)
	if *escape && !disabled["noalloc"] {
		esc, err := lint.EscapeCheck(*dir, patterns)
		if err != nil {
			fmt.Fprintln(stderr, "stressvet:", err)
			return 2
		}
		findings = append(findings, esc...)
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(stderr, "stressvet: %d finding(s)\n", n)
		return 1
	}
	fmt.Fprintf(stdout, "stressvet: %d package(s) clean (%d analyzers%s)\n",
		len(pkgs), len(analyzers), map[bool]string{true: " + escape gate", false: ""}[*escape])
	return 0
}
