package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays down a throwaway module so the tests exercise the full
// load-analyze-report path without touching the real repository.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module scratch\n\ngo 1.24\n"

const cleanSrc = `package scratch

func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
`

func TestCleanModulePasses(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "a.go": cleanSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on clean module; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "clean") {
		t.Errorf("missing clean summary in output: %q", stdout.String())
	}
}

// TestInjectedViolationFails is the acceptance check that a fresh violation
// actually fails the build: the clean module plus one float equality, one
// ad-hoc goroutine, and one allocation in a noalloc function must exit 1.
func TestInjectedViolationFails(t *testing.T) {
	const badSrc = `package scratch

func Equal(a, b float64) bool {
	return a == b
}

func Spawn(f func()) {
	go f()
}

//stressvet:noalloc
func Hot(n int) []float64 {
	return make([]float64, n)
}
`
	dir := writeModule(t, map[string]string{"go.mod": goMod, "a.go": cleanSrc, "bad.go": badSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d on module with violations, want 1; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	for _, wantAnalyzer := range []string{"floatcmp", "workerbound", "noalloc"} {
		if !strings.Contains(stdout.String(), "["+wantAnalyzer+"]") {
			t.Errorf("no %s finding reported; output:\n%s", wantAnalyzer, stdout.String())
		}
	}
}

func TestDisableFlag(t *testing.T) {
	const badSrc = `package scratch

func Equal(a, b float64) bool {
	return a == b
}
`
	dir := writeModule(t, map[string]string{"go.mod": goMod, "bad.go": badSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-disable", "floatcmp", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d with floatcmp disabled, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if code := run([]string{"-C", dir, "-disable", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d on unknown -disable name, want 2", code)
	}
}

func TestEscapeGateFlag(t *testing.T) {
	const escSrc = `package scratch

//stressvet:noalloc
func Leak() *int {
	x := 42
	return &x
}
`
	dir := writeModule(t, map[string]string{"go.mod": goMod, "esc.go": escSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-escape", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d with escaping noalloc function, want 1; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "noalloc/escape") {
		t.Errorf("no escape-gate finding; output:\n%s", stdout.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d from -list", code)
	}
	for _, name := range []string{"noalloc", "determinism", "floatcmp", "lockcheck", "workerbound"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
