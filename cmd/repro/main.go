// Command repro regenerates every table and figure of the MORE-Stress
// paper's evaluation (§5): Table 1 (standalone arrays, time/memory/error for
// full FEM, linear superposition, and MORE-Stress), Table 2 (arrays embedded
// at five package locations via sub-modeling), Table 3 and Fig. 6
// (convergence with the interpolation node count).
//
// By default the array sizes are scaled down from the paper's 10×10–50×50 so
// the full fine-mesh reference remains solvable on one machine; pass -full
// for the paper-scale sweep (the reference ground truth is then computed only
// up to -maxref blocks per side).
//
// Usage:
//
//	repro -exp table1|table2|table3|fig5|fig6|ablation|all [-full] [-gs 100]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/chiplet"
	"repro/internal/mesh"
	"repro/internal/metrics"

	morestress "repro"
)

var (
	expFlag  = flag.String("exp", "all", "experiment: table1, table2, table3, fig5, fig6, ablation, or all")
	fullFlag = flag.Bool("full", false, "paper-scale array sizes (10x10..50x50); much slower")
	gsFlag   = flag.Int("gs", 50, "von Mises samples per block edge (paper: 100)")
	nodeFlag = flag.Int("nodes", 5, "Lagrange interpolation nodes per axis for tables 1-2")
	tolFlag  = flag.Float64("tol", 1e-9, "iterative solver tolerance")
	maxRef   = flag.Int("maxref", 8, "largest array size solved by the fine reference")
)

func main() {
	flag.Parse()
	fmt.Printf("MORE-Stress reproduction driver (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	switch *expFlag {
	case "table1":
		table1()
	case "table2":
		table2()
	case "table3":
		table3(false)
	case "fig6":
		table3(true)
	case "ablation":
		ablation()
	case "fig5":
		fig5()
	case "all":
		table1()
		table2()
		table3(false)
		table3(true)
		ablation()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}

func opts() morestress.SolverOptions { return morestress.SolverOptions{Tol: *tolFlag} }

func sizes() []int {
	if *fullFlag {
		return []int{10, 20, 30, 40, 50}
	}
	return []int{4, 6, 8, 10, 12}
}

const deltaT = -250.0

func seconds(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }

func gb(b int64) string { return fmt.Sprintf("%.2fG", float64(b)/(1<<30)) }

// table1 reproduces Table 1: standalone clamped arrays at p = 15 and 10 µm.
func table1() {
	fmt.Println("\n=== Table 1: standalone TSV arrays (Fig. 5(a)) ===")
	for _, pitch := range []float64{15, 10} {
		cfg := morestress.DefaultConfig(pitch)
		cfg.Nodes = [3]int{*nodeFlag, *nodeFlag, *nodeFlag}

		var model *morestress.Model
		mLocal := metrics.Measure(func() {
			var err error
			model, err = morestress.BuildModel(cfg)
			check(err)
		})
		fmt.Printf("\np = %g um: one-shot local stage %s (peak %s, n = %d element DoFs)\n",
			pitch, seconds(mLocal.Elapsed), gb(mLocal.PeakHeapBytes), model.ElementDoFs())

		var sup *morestress.Superposition
		mSup := metrics.Measure(func() {
			var err error
			sup, err = morestress.BuildSuperposition(cfg, 2, *gsFlag, opts())
			check(err)
		})
		fmt.Printf("superposition one-shot kernel: %s (peak %s)\n", seconds(mSup.Elapsed), gb(mSup.PeakHeapBytes))

		fmt.Printf("%-14s %12s %12s %12s %12s %12s\n", "array size", "ref time", "ref mem", "method", "time/mem", "error")
		for _, n := range sizes() {
			var ref *morestress.ReferenceResult
			refTime, refMem := "-", "-"
			if n <= *maxRef {
				m := metrics.Measure(func() {
					var err error
					ref, err = morestress.ReferenceArray(cfg, n, n, deltaT, *gsFlag, opts())
					check(err)
				})
				refTime, refMem = seconds(m.Elapsed), gb(m.PeakHeapBytes)
			}

			var supVM *morestress.Field
			mEst := metrics.Measure(func() { supVM = sup.EstimateArray(n, n, deltaT) })
			supErr := "-"
			if ref != nil {
				supErr = fmt.Sprintf("%.2f%%", 100*morestress.NormalizedMAE(supVM, ref.VM))
			}

			var res *morestress.ArrayResult
			mROM := metrics.Measure(func() {
				var err error
				res, err = model.SolveArray(morestress.ArraySpec{
					Rows: n, Cols: n, DeltaT: deltaT, GridSamples: *gsFlag, Options: opts(),
				})
				check(err)
			})
			romErr := "-"
			if ref != nil {
				romErr = fmt.Sprintf("%.2f%%", 100*morestress.NormalizedMAE(res.VM, ref.VM))
			}

			fmt.Printf("%-14s %12s %12s %12s %12s %12s\n",
				fmt.Sprintf("%dx%d", n, n), refTime, refMem,
				"superpos.", seconds(mEst.Elapsed)+"/"+gb(mEst.PeakHeapBytes), supErr)
			fmt.Printf("%-14s %12s %12s %12s %12s %12s\n",
				"", "", "", "MORE-Stress", seconds(mROM.Elapsed)+"/"+gb(mROM.PeakHeapBytes), romErr)
		}
	}
}

// table2 reproduces Table 2: a TSV array embedded at five chiplet locations
// through sub-modeling.
func table2() {
	fmt.Println("\n=== Table 2: embedded arrays at five chiplet locations (Fig. 5(b)) ===")
	rows, cols, ring := 7, 7, 2
	if *fullFlag {
		rows, cols = 15, 15
	}
	for _, pitch := range []float64{15, 10} {
		cfg := morestress.DefaultConfig(pitch)
		cfg.Nodes = [3]int{*nodeFlag, *nodeFlag, *nodeFlag}
		model, err := morestress.BuildModelWithDummy(cfg)
		check(err)
		pkg, err := morestress.SolvePackage(morestress.DefaultPackage(),
			morestress.DefaultPackageResolution(), deltaT, opts(), 0)
		check(err)
		sup, err := morestress.BuildSuperposition(cfg, 2, *gsFlag, opts())
		check(err)

		fmt.Printf("\np = %g um, %dx%d TSV array + %d dummy rings (coarse package solve: %s)\n",
			pitch, rows, cols, ring, seconds(pkg.Coarse.SolveTime))
		fmt.Printf("%-6s %12s %12s %12s %12s %12s %12s\n",
			"loc", "ref time", "MORE time", "MORE mem", "MORE err", "sup time", "sup err")
		for _, loc := range morestress.Locations {
			spec := morestress.EmbeddedSpec{
				Rows: rows, Cols: cols, DummyRing: ring, Location: loc,
				GridSamples: *gsFlag, Options: opts(),
			}
			var ref *morestress.ReferenceResult
			refTime := "-"
			if cols+2*ring <= *maxRef+4 {
				m := metrics.Measure(func() {
					var err error
					ref, err = morestress.ReferenceEmbedded(cfg, pkg, spec, *gsFlag, opts())
					check(err)
				})
				refTime = seconds(m.Elapsed)
			}
			var res *morestress.EmbeddedResult
			mROM := metrics.Measure(func() {
				var err error
				res, err = model.SolveEmbedded(pkg, spec)
				check(err)
			})
			var supVM *morestress.Field
			mSup := metrics.Measure(func() {
				var err error
				supVM, err = sup.EstimateEmbedded(pkg, spec)
				check(err)
			})
			romErr, supErr := "-", "-"
			if ref != nil {
				romErr = fmt.Sprintf("%.2f%%", 100*morestress.NormalizedMAE(res.VM, ref.VM))
				supErr = fmt.Sprintf("%.2f%%", 100*morestress.NormalizedMAE(supVM, ref.VM))
			}
			fmt.Printf("%-6s %12s %12s %12s %12s %12s %12s\n",
				loc.String(), refTime, seconds(mROM.Elapsed), gb(mROM.PeakHeapBytes), romErr,
				seconds(mSup.Elapsed), supErr)
		}
	}
}

// table3 reproduces Table 3 (and, with series=true, the two Fig. 6 series):
// convergence with the interpolation node count on a fixed array.
func table3(series bool) {
	n := 8
	if *fullFlag {
		n = 20
	}
	cfg := morestress.DefaultConfig(15)
	var ref *morestress.ReferenceResult
	if n <= *maxRef {
		var err error
		ref, err = morestress.ReferenceArray(cfg, n, n, deltaT, *gsFlag, opts())
		check(err)
	}
	if series {
		fmt.Printf("\n=== Fig. 6: error and global runtime vs element DoFs n (%dx%d array) ===\n", n, n)
	} else {
		fmt.Printf("\n=== Table 3: convergence on a %dx%d array, p = 15 um ===\n", n, n)
		fmt.Printf("%-14s %6s %14s %14s %10s\n", "(nx,ny,nz)", "n", "local stage", "global stage", "error")
	}
	type pt struct {
		n       int
		err     float64
		global  time.Duration
		haveErr bool
	}
	var pts []pt
	for _, nodes := range []int{2, 3, 4, 5, 6} {
		c := cfg
		c.Nodes = [3]int{nodes, nodes, nodes}
		var model *morestress.Model
		mLocal := metrics.Measure(func() {
			var err error
			model, err = morestress.BuildModel(c)
			check(err)
		})
		var res *morestress.ArrayResult
		mGlobal := metrics.Measure(func() {
			var err error
			res, err = model.SolveArray(morestress.ArraySpec{
				Rows: n, Cols: n, DeltaT: deltaT, GridSamples: *gsFlag, Options: opts(),
			})
			check(err)
		})
		p := pt{n: model.ElementDoFs(), global: mGlobal.Elapsed}
		errStr := "-"
		if ref != nil {
			p.err = morestress.NormalizedMAE(res.VM, ref.VM)
			p.haveErr = true
			errStr = fmt.Sprintf("%.2f%%", 100*p.err)
		}
		pts = append(pts, p)
		if !series {
			fmt.Printf("(%d,%d,%d)%6s %6d %14s %14s %10s\n",
				nodes, nodes, nodes, "", p.n, seconds(mLocal.Elapsed), seconds(mGlobal.Elapsed), errStr)
		}
	}
	if series {
		fmt.Println("series error(n): n err%")
		for _, p := range pts {
			if p.haveErr {
				fmt.Printf("  %4d %8.3f\n", p.n, 100*p.err)
			}
		}
		fmt.Println("series runtime(n): n seconds")
		for _, p := range pts {
			fmt.Printf("  %4d %8.3f\n", p.n, p.global.Seconds())
		}
	}
}

// fig5 renders the scenario geometries (Fig. 5 of the paper) as ASCII
// material maps: the TSV unit block's mid-height cross-section and the five
// embedding locations in the chiplet.
func fig5() {
	fmt.Println("\n=== Fig. 5 scenario geometry ===")
	geom := mesh.PaperGeometry(15)
	g, err := mesh.NewBlock(geom, mesh.DefaultResolution(), mesh.KindTSV)
	check(err)
	fmt.Println("TSV unit block mid-height cross-section ('#' Cu, 'o' liner, '.' Si):")
	fmt.Print(g.RenderSlice(geom.Height / 2))

	st := morestress.DefaultPackage()
	fmt.Printf("\nchiplet (Fig. 5(b)): substrate %g, interposer %g, die %g um\n",
		st.SubstrateSize, st.InterposerSize, st.DieSize)
	w := morestress.EmbeddedSpec{Rows: 7, Cols: 7, DummyRing: 2}.Width(geom.Pitch)
	for _, loc := range morestress.Locations {
		o, err := chiplet.SubmodelOrigin(st, loc, w)
		check(err)
		fmt.Printf("  %-5s sub-model at (%6.0f, %6.0f) um\n", loc, o.X, o.Y)
	}
}

// ablation prints the design-choice comparisons of DESIGN.md §5: the global
// solver family and the ground-truth element order.
func ablation() {
	fmt.Println("\n=== Ablations (DESIGN.md §5) ===")
	cfg := morestress.DefaultConfig(15)
	cfg.Nodes = [3]int{*nodeFlag, *nodeFlag, *nodeFlag}
	model, err := morestress.BuildModel(cfg)
	check(err)

	n := 8
	fmt.Printf("global solver on a %dx%d array:\n", n, n)
	for _, mode := range []struct {
		name  string
		useCG bool
	}{{"GMRES (paper)", false}, {"CG", true}} {
		m := metrics.Measure(func() {
			_, err := model.SolveArray(morestress.ArraySpec{
				Rows: n, Cols: n, DeltaT: deltaT, UseCG: mode.useCG, Options: opts(),
			})
			check(err)
		})
		fmt.Printf("  %-14s %8s  (peak %s)\n", mode.name, seconds(m.Elapsed), gb(m.PeakHeapBytes))
	}

	fmt.Println("ground-truth element order (4x4 array, same mesh):")
	for _, mode := range []struct {
		name string
		quad bool
	}{{"trilinear", false}, {"quadratic", true}} {
		var ref *morestress.ReferenceResult
		m := metrics.Measure(func() {
			var err error
			if mode.quad {
				ref, err = morestress.ReferenceArrayQuadratic(cfg, 4, 4, deltaT, *gsFlag, opts())
			} else {
				ref, err = morestress.ReferenceArray(cfg, 4, 4, deltaT, *gsFlag, opts())
			}
			check(err)
		})
		res, err := model.SolveArray(morestress.ArraySpec{
			Rows: 4, Cols: 4, DeltaT: deltaT, GridSamples: *gsFlag, Options: opts(),
		})
		check(err)
		fmt.Printf("  %-10s %8s, %8d DoFs, MORE-Stress error vs it: %.2f%%\n",
			mode.name, seconds(m.Elapsed), ref.DoFs,
			100*morestress.NormalizedMAE(res.VM, ref.VM))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
