// Command morestress is the command-line front end of the MORE-Stress
// library: it builds reduced-order TSV unit-block models (the one-shot local
// stage), stores them on disk, and solves standalone or package-embedded TSV
// arrays (the global stage), printing runtime statistics and stress summaries
// and optionally writing the mid-plane von Mises field as CSV.
//
// Usage:
//
//	morestress build -pitch 15 -nodes 5 -o model.bin [-dummy]
//	morestress solve -model model.bin -rows 10 -cols 10 -dt -250 [-gs 100] [-out field.vtk] [-ascii]
//	morestress embed -model model.bin -rows 7 -cols 7 -loc 3 [-ring 2] [-out field.csv]
//	morestress info  -model model.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	morestress "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "solve":
		cmdSolve(os.Args[2:])
	case "embed":
		cmdEmbed(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: morestress build|solve|embed|info [flags]")
	os.Exit(2)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "morestress:", err)
		os.Exit(1)
	}
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	pitch := fs.Float64("pitch", 15, "TSV pitch in um")
	height := fs.Float64("height", 50, "TSV height in um")
	diameter := fs.Float64("diameter", 5, "via diameter in um")
	liner := fs.Float64("liner", 0.5, "liner thickness in um")
	nodes := fs.Int("nodes", 5, "Lagrange interpolation nodes per axis")
	dummy := fs.Bool("dummy", false, "also build the dummy (pure Si) block model")
	quad := fs.Bool("quad", false, "use 20-node quadratic elements in the local stage")
	out := fs.String("o", "model.bin", "output model file")
	fail(fs.Parse(args))

	cfg := morestress.DefaultConfig(*pitch)
	cfg.Geometry = morestress.Geometry{Height: *height, Diameter: *diameter, Liner: *liner, Pitch: *pitch}
	cfg.Nodes = [3]int{*nodes, *nodes, *nodes}
	cfg.Quadratic = *quad

	var m *morestress.Model
	var err error
	if *dummy {
		m, err = morestress.BuildModelWithDummy(cfg)
	} else {
		m, err = morestress.BuildModel(cfg)
	}
	fail(err)
	f, err := os.Create(*out)
	fail(err)
	defer f.Close()
	fail(m.Save(f))
	fmt.Printf("local stage done in %v: n = %d element DoFs, saved to %s\n",
		m.LocalStageTime(), m.ElementDoFs(), *out)
}

func loadModel(path string) *morestress.Model {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	m, err := morestress.LoadModel(f)
	fail(err)
	return m
}

// exportField writes the field in the format implied by the file extension
// (.csv, .vtk, .pgm); spacing is the physical sample pitch for VTK.
func exportField(path string, vm *morestress.Field, spacing float64) {
	f, err := os.Create(path)
	fail(err)
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".vtk"):
		fail(vm.WriteVTK(f, "vonMises", spacing, spacing))
	case strings.HasSuffix(path, ".pgm"):
		fail(vm.WritePGM(f))
	default:
		fail(vm.WriteCSV(f))
	}
	fmt.Printf("wrote %dx%d von Mises field to %s\n", vm.NX, vm.NY, path)
}

func cmdSolve(args []string) {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	model := fs.String("model", "model.bin", "model file from 'build'")
	rows := fs.Int("rows", 10, "array rows")
	cols := fs.Int("cols", 10, "array cols")
	dt := fs.Float64("dt", -250, "thermal load in C")
	gs := fs.Int("gs", 100, "von Mises samples per block edge")
	tol := fs.Float64("tol", 1e-9, "solver tolerance")
	useCG := fs.Bool("cg", false, "use CG instead of GMRES")
	ascii := fs.Bool("ascii", false, "print an ASCII heatmap of the field")
	out := fs.String("out", "", "write the field to this file (.csv, .vtk, or .pgm)")
	fail(fs.Parse(args))

	m := loadModel(*model)
	res, err := m.SolveArray(morestress.ArraySpec{
		Rows: *rows, Cols: *cols, DeltaT: *dt, GridSamples: *gs,
		UseCG: *useCG, Options: morestress.SolverOptions{Tol: *tol},
	})
	fail(err)
	fmt.Printf("global stage: %v (%d global DoFs, %d iterations, residual %.2e)\n",
		res.GlobalTime, res.GlobalDoFs, res.Stats.Iterations, res.Stats.Residual)
	fmt.Printf("mid-plane von Mises: max %.1f MPa, mean %.1f MPa\n", res.VM.Max(), res.VM.Mean())
	if *out != "" {
		exportField(*out, res.VM, m.Config.Geometry.Pitch/float64(*gs))
	}
	if *ascii {
		fmt.Print(res.VM.RenderASCII(100))
	}
}

func cmdEmbed(args []string) {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	model := fs.String("model", "model.bin", "model file from 'build -dummy'")
	rows := fs.Int("rows", 7, "TSV array rows")
	cols := fs.Int("cols", 7, "TSV array cols")
	ring := fs.Int("ring", 2, "dummy block rings")
	locN := fs.Int("loc", 1, "package location 1..5 (Fig. 5(b))")
	dt := fs.Float64("dt", -250, "thermal load in C")
	gs := fs.Int("gs", 100, "von Mises samples per block edge")
	tol := fs.Float64("tol", 1e-9, "solver tolerance")
	out := fs.String("out", "", "write the field to this file (.csv, .vtk, or .pgm)")
	fail(fs.Parse(args))
	if *locN < 1 || *locN > 5 {
		fail(fmt.Errorf("invalid location %d", *locN))
	}

	m := loadModel(*model)
	pkg, err := morestress.SolvePackage(morestress.DefaultPackage(),
		morestress.DefaultPackageResolution(), *dt, morestress.SolverOptions{Tol: *tol}, 0)
	fail(err)
	fmt.Printf("coarse package solve: %v\n", pkg.Coarse.SolveTime)
	res, err := m.SolveEmbedded(pkg, morestress.EmbeddedSpec{
		Rows: *rows, Cols: *cols, DummyRing: *ring,
		Location:    morestress.Location(*locN),
		GridSamples: *gs, Options: morestress.SolverOptions{Tol: *tol},
	})
	fail(err)
	fmt.Printf("global stage at loc%d (origin %.0f,%.0f): %v, %d iterations\n",
		*locN, res.Origin.X, res.Origin.Y, res.GlobalTime, res.Stats.Iterations)
	fmt.Printf("TSV-array mid-plane von Mises: max %.1f MPa, mean %.1f MPa\n",
		res.VM.Max(), res.VM.Mean())
	if *out != "" {
		exportField(*out, res.VM, m.Config.Geometry.Pitch/float64(*gs))
	}
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	model := fs.String("model", "model.bin", "model file")
	fail(fs.Parse(args))
	m := loadModel(*model)
	g := m.Config.Geometry
	fmt.Printf("geometry: pitch %g, height %g, diameter %g, liner %g um\n",
		g.Pitch, g.Height, g.Diameter, g.Liner)
	fmt.Printf("interpolation nodes: %v -> n = %d element DoFs (%s)\n",
		m.Config.Nodes, m.ElementDoFs(), strconv.Quote("Eq. 16"))
	fmt.Printf("fine mesh per block: %d DoFs (%d free)\n",
		m.TSV.Stats.FineDoFs, m.TSV.Stats.FreeDoFs)
	fmt.Printf("has dummy block model: %v\n", m.Dummy != nil)
}
