package main

// Multi-replica end-to-end harness: the acceptance exercise for the shard
// router. TestMain re-execs this test binary as real replica processes
// (journaled serveapi servers, the crash_test.go pattern), fronts them with
// an in-process Proxy, drives mixed traffic over a fixed lattice set, and
// asserts the three routing properties the tentpole promises:
//
//   - cache affinity: each lattice's assembly/preconditioner builds happen
//     on exactly one replica, the one the rendezvous table predicts;
//   - balance: the fixed lattice set spreads over more than one replica;
//   - failover: after SIGKILL of one replica its keyspace is served by its
//     rendezvous runner-up, while jobs accepted by survivors complete.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	morestress "repro"
	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/serveapi"
	"repro/internal/wal"
)

const (
	e2eChildEnv   = "ROUTER_E2E_CHILD"
	e2eJournalEnv = "ROUTER_E2E_JOURNAL"
	e2eCacheEnv   = "ROUTER_E2E_CACHE"
)

func TestMain(m *testing.M) {
	if os.Getenv(e2eChildEnv) == "1" {
		runReplicaChild()
		return // unreachable; runReplicaChild never returns
	}
	os.Exit(m.Run())
}

// runReplicaChild is one replica: a journaled serveapi server sequenced the
// way cmd/serve sequences it — listener up, recovery replayed, then ready.
func runReplicaChild() {
	engine := morestress.NewEngine(morestress.EngineOptions{Workers: 2, CacheDir: os.Getenv(e2eCacheEnv)})
	journal, err := wal.Open(os.Getenv(e2eJournalEnv), wal.Options{})
	if err != nil {
		log.Fatalf("replica child: %v", err)
	}
	queue, err := serveapi.NewQueue(engine, 16, 1, 10*time.Minute, 0, journal)
	if err != nil {
		log.Fatalf("replica child: %v", err)
	}
	srv := serveapi.New(engine, queue)
	srv.Journal = journal
	srv.BeginRecovery()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("replica child: %v", err)
	}
	go func() { log.Fatal(http.Serve(ln, srv.Routes())) }()
	if _, err := queue.Recover(); err != nil {
		log.Fatalf("replica child: recover: %v", err)
	}
	srv.FinishRecovery()
	fmt.Printf("ADDR=%s\n", ln.Addr())
	os.Stdout.Sync()
	select {}
}

// startReplica launches a replica child and returns its base URL plus an
// idempotent SIGKILL.
func startReplica(t *testing.T, journalDir, cacheDir string) (baseURL string, kill func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		e2eChildEnv+"=1", e2eJournalEnv+"="+journalDir, e2eCacheEnv+"="+cacheDir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	kill = func() {
		if !killed {
			killed = true
			cmd.Process.Kill() // SIGKILL: no flush, no goodbye
			cmd.Wait()
		}
	}
	t.Cleanup(kill)
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "ADDR="); ok {
			return "http://" + addr, kill
		}
	}
	t.Fatalf("replica child exited before printing its address (scan err: %v)", sc.Err())
	return "", nil
}

// latticeKey derives the lattice key of the harness's rows×2 coarse
// scenario — the exact key every replica's engine uses, so the parent can
// predict placement with its own rendezvous table.
func latticeKey(t *testing.T, rows int) string {
	t.Helper()
	cfg := morestress.DefaultConfig(15)
	cfg.Nodes = [3]int{3, 3, 3}
	cfg.Resolution = mesh.CoarseResolution()
	return morestress.LatticeKey(morestress.Job{Config: cfg, Rows: rows, Cols: 2, DeltaT: -250, Solver: morestress.SolveCG})
}

func e2eReq(rows int, dt float64) string {
	return fmt.Sprintf(`{"resolution":"coarse","nodes":3,"rows":%d,"cols":2,"deltaT":%g,"solver":"cg"}`, rows, dt)
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getStats(t *testing.T, base string) serveapi.StatsResponse {
	t.Helper()
	var st serveapi.StatsResponse
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("stats %s: %v", base, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats %s: %v", base, err)
	}
	return st
}

func TestMultiReplicaAffinityAndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica harness re-execs the test binary and solves real scenarios")
	}
	const replicas = 3

	// Three real replica processes, each with its own journal and spill dir.
	urls := make([]string, replicas)
	kills := make([]func(), replicas)
	for i := 0; i < replicas; i++ {
		urls[i], kills[i] = startReplica(t, t.TempDir(), t.TempDir())
	}
	proxy, err := router.NewProxy(router.ProxyOptions{
		Replicas:      urls,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Backoff:       5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy.Start()
	t.Cleanup(proxy.Close)
	front := httptest.NewServer(proxy.Routes())
	t.Cleanup(front.Close)

	// The parent predicts placement with its own table over the same URLs —
	// determinism is the property under test.
	table := router.NewTable(urls)
	lattices := []int{1, 2, 3, 4, 5, 6}
	owner := make(map[int]int)
	ownedBy := make(map[int][]int)
	for _, rows := range lattices {
		o := table.Pick(latticeKey(t, rows))
		owner[rows] = o
		ownedBy[o] = append(ownedBy[o], rows)
	}

	// Balance: rendezvous hashing must spread this small fixed set over
	// more than one replica (it does for these keys; a regression to
	// constant placement would collapse them onto one).
	if len(ownedBy) < 2 {
		t.Fatalf("all %d lattices landed on one replica: %v", len(lattices), owner)
	}

	// Mixed traffic: three solves per lattice (distinct ΔT — same lattice,
	// different loads) through the router.
	for _, rows := range lattices {
		for _, dt := range []float64{-250, -200, -150} {
			var out serveapi.JobResponse
			if code := postJSON(t, front.URL+"/solve", e2eReq(rows, dt), &out); code != http.StatusOK {
				t.Fatalf("solve rows=%d dt=%g: status %d", rows, dt, code)
			}
			if out.Error != "" || !out.Converged {
				t.Fatalf("solve rows=%d dt=%g: %+v", rows, dt, out)
			}
		}
	}

	// Affinity: each replica must have built exactly its own lattices'
	// assemblies — and nothing else. Builds summed across the fleet equal
	// the lattice count: every lattice solved on exactly one replica.
	var totalAssemblies, totalPrecondBuilds int64
	for i, u := range urls {
		st := getStats(t, u)
		want := int64(len(ownedBy[i]))
		if st.Solver.Assemblies != want {
			t.Errorf("replica %d built %d assemblies, want %d (owns %v)", i, st.Solver.Assemblies, want, ownedBy[i])
		}
		if st.Solver.PrecondBuilds > want {
			t.Errorf("replica %d built %d preconditioners for %d lattices", i, st.Solver.PrecondBuilds, want)
		}
		totalAssemblies += st.Solver.Assemblies
		totalPrecondBuilds += st.Solver.PrecondBuilds
	}
	if totalAssemblies != int64(len(lattices)) {
		t.Fatalf("fleet built %d assemblies for %d lattices — some lattice solved on two replicas", totalAssemblies, len(lattices))
	}
	if totalPrecondBuilds > int64(len(lattices)) {
		t.Fatalf("fleet built %d preconditioners for %d lattices", totalPrecondBuilds, len(lattices))
	}

	// Pick the victim: a replica that owns at least one lattice. A survivor
	// will carry an async job through the kill.
	victim := owner[lattices[0]]
	movedLattice := lattices[0]
	survivor := -1
	for i := range urls {
		if i != victim {
			survivor = i
			break
		}
	}
	runnerUp := -1
	for _, idx := range table.Order(latticeKey(t, movedLattice), nil) {
		if idx != victim {
			runnerUp = idx
			break
		}
	}
	survivorBefore := getStats(t, urls[runnerUp]).Solver.Assemblies

	// Submit an async job owned by a survivor lattice, through the router.
	survivorLattice := -1
	for _, rows := range lattices {
		if owner[rows] == survivor {
			survivorLattice = rows
			break
		}
	}
	if survivorLattice == -1 {
		// The survivor owns nothing in the fixed set (possible but rare);
		// fall back to any non-victim owner.
		for _, rows := range lattices {
			if owner[rows] != victim {
				survivorLattice, survivor = rows, owner[rows]
				break
			}
		}
	}
	var sub serveapi.SubmitResponse
	jobBody := fmt.Sprintf(`{"jobs":[%s,%s]}`, e2eReq(survivorLattice, -240), e2eReq(survivorLattice, -230))
	if code := postJSON(t, front.URL+"/jobs", jobBody, &sub); code != http.StatusAccepted {
		t.Fatalf("job submit: status %d", code)
	}
	if !strings.HasPrefix(sub.ID, fmt.Sprintf("s%d-", survivor)) {
		t.Fatalf("job ID %q not routed to survivor replica %d", sub.ID, survivor)
	}

	// SIGKILL the victim. Its keyspace must fail over to the rendezvous
	// runner-up; traffic for everyone else must not move.
	kills[victim]()

	var out serveapi.JobResponse
	if code := postJSON(t, front.URL+"/solve", e2eReq(movedLattice, -100), &out); code != http.StatusOK {
		t.Fatalf("post-kill solve: status %d", code)
	}
	if out.Error != "" || !out.Converged {
		t.Fatalf("post-kill solve: %+v", out)
	}
	// The runner-up re-warmed the orphaned lattice: exactly one new
	// assembly there.
	if got := getStats(t, urls[runnerUp]).Solver.Assemblies; got != survivorBefore+1 {
		t.Errorf("runner-up %d assemblies %d after failover, want %d", runnerUp, got, survivorBefore+1)
	}

	// The accepted job completes on its survivor.
	deadline := time.Now().Add(2 * time.Minute)
	var status serveapi.JobStatusResponse
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished after the kill (last: %+v)", sub.ID, status)
		}
		resp, err := http.Get(front.URL + "/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if code != http.StatusOK || err != nil {
			t.Fatalf("poll job: status %d err %v", code, err)
		}
		if s := strings.ToLower(status.State); s == "done" || s == "failed" || s == "cancelled" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status.State != "done" || status.Completed != 2 {
		t.Fatalf("survivor job state %q completed %d, want done/2 (error %q)", status.State, status.Completed, status.Error)
	}

	// The router's own view converges: the victim marked down, failovers
	// counted, readiness still green (survivors remain).
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(front.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var agg router.AggStats
		err = json.NewDecoder(resp.Body).Decode(&agg)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !agg.Router.Replicas[victim].Up && agg.Router.Failovers > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never marked the killed replica down: %+v", agg.Router)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router readyz %d with %d survivors", resp.StatusCode, replicas-1)
	}
}
