// Command router fronts a fleet of serve replicas with cache-affine,
// health-aware request routing. Each request's lattice key — the same
// "ROM spec SHA-256 | dims | BC" string the engine keys its assembly,
// preconditioner, factor, and warm-start caches by — is mapped to a replica
// with rendezvous (highest-random-weight) hashing, so repeated traffic for
// one lattice keeps landing where that lattice's caches are already warm.
// Placement depends only on the key and the replica URL list: every router
// instance (and the same one after a restart) agrees, so routers are
// stateless and horizontally scalable.
//
// # Surface
//
// The router mirrors the replica surface:
//
//	POST   /solve             routed by the scenario's lattice key
//	POST   /batch             split by lattice key; sub-batches fan out to
//	                          their owners concurrently, results merge back
//	                          into input order
//	POST   /jobs              routed by the first scenario's lattice key;
//	                          the returned ID is prefixed "s<replica>-" so
//	                          lifecycle requests route statelessly
//	GET    /jobs/{id}         forwarded to the owning replica
//	GET    /jobs/{id}/events  SSE passthrough (streamed, flushed per chunk)
//	DELETE /jobs/{id}         forwarded to the owning replica
//	GET    /stats             fleet aggregate + per-replica breakdown +
//	                          router forwarding counters
//	GET    /healthz           router liveness (always 200)
//	GET    /readyz            200 while at least one replica is up
//
// # Health and failover
//
// Each replica's /readyz is probed every -probe-interval: probing readiness
// rather than liveness keeps traffic out of a replica's journal-recovery
// window (the process is up, but mutating endpoints answer 503 until the
// replay finishes). When a forward fails — transport error, or a
// 502/503/504 — the replica is marked down and the request retries on the
// next replica in the key's rendezvous order, with linear backoff, bounded
// by -retries. Rendezvous failover is itself deterministic: a dead
// replica's keyspace lands coherently on single replacements (~1/k of the
// keyspace each) instead of scattering per request, and moves back when the
// replica returns. Job lifecycle requests (GET/DELETE /jobs/{id}) do not
// fail over — a job exists only where it was accepted.
//
// # A three-replica walkthrough
//
// Start three replicas and a router:
//
//	$ serve -addr :8081 -journal-dir /var/lib/ms/j1 &
//	$ serve -addr :8082 -journal-dir /var/lib/ms/j2 &
//	$ serve -addr :8083 -journal-dir /var/lib/ms/j3 &
//	$ router -addr :8080 -replicas http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// Solve through the router; repeats of the same lattice hit the same
// replica's warm caches:
//
//	$ curl -s localhost:8080/solve -d '{"rows":20,"cols":20,"deltaT":-250}'
//	{"converged":true,...,"cacheHit":false,...}
//	$ curl -s localhost:8080/solve -d '{"rows":20,"cols":20,"deltaT":-200}'
//	{"converged":true,...,"cacheHit":true,...}      # same replica, warm ROM + assembly
//
// Submit an async job and follow it through the router — the ID carries its
// replica:
//
//	$ curl -s localhost:8080/jobs -d '{"jobs":[{"rows":30,"cols":30}]}'
//	{"id":"s2-f9a31c0e21d4b007","state":"pending",...,"poll":"/jobs/s2-f9a31c0e21d4b007",...}
//	$ curl -s localhost:8080/jobs/s2-f9a31c0e21d4b007
//	{"id":"f9a31c0e21d4b007","state":"done",...}    # body IDs stay replica-local
//
// Kill a replica; its keyspace fails over to the next shard in rendezvous
// order, the rest of the fleet keeps its placement:
//
//	$ kill -9 %2
//	$ curl -s localhost:8080/solve -d '{"rows":20,"cols":20,"deltaT":-150}'
//	{"converged":true,...}                          # rerouted, re-warms on the survivor
//
// And inspect the fleet:
//
//	$ curl -s localhost:8080/stats | jq '.router.replicas, .fleet.shards'
//
// Usage:
//
//	router -replicas URL[,URL...] [-addr :8080]
//	       [-probe-interval 500ms] [-probe-timeout 2s]
//	       [-retries 2N] [-backoff 50ms]
//	       [-precond auto] [-ordering auto] [-tuning FILE]
//
// -precond/-ordering only feed request validation during key derivation
// (the lattice key does not depend on solver options); they should match
// the replicas' flags. -tuning likewise mirrors the replicas: it loads the
// same measured host-profile thresholds (see docs/MEASUREMENT.md) so the
// router's "auto" resolution agrees with theirs.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	morestress "repro"
	"repro/internal/router"
	"repro/internal/solver/tuning"
)

//stressvet:gang -- one goroutine carries ListenAndServe so main can select on shutdown signals
func main() {
	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "replica /readyz probe period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
	retries := flag.Int("retries", 0, "max forwarding attempts per request across the failover order (0 = twice per replica)")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base pause between failover attempts (grows linearly)")
	precondFlag := flag.String("precond", "auto", "default preconditioner assumed during request validation (match the replicas)")
	orderingFlag := flag.String("ordering", "auto", "default IC0 ordering assumed during request validation (match the replicas)")
	precisionFlag := flag.String("precision", "auto", "default IC0 factor precision assumed during request validation (match the replicas)")
	tuningPath := flag.String("tuning", "",
		"bench-global/v2 file (or bare host_profiles snapshot) so \"auto\" resolves with the same measured thresholds as the replicas (empty = embedded snapshot)")
	flag.Parse()

	precond, err := morestress.ParsePrecond(*precondFlag)
	if err != nil {
		log.Fatal(err)
	}
	ordering, err := morestress.ParseOrdering(*orderingFlag)
	if err != nil {
		log.Fatal(err)
	}
	precision, err := morestress.ParsePrecision(*precisionFlag)
	if err != nil {
		log.Fatal(err)
	}
	// The router never solves, but "auto" preconditioner/ordering decisions
	// made during request validation should agree with what the replicas will
	// actually do — resolve the same measured thresholds they do.
	tun, err := tuning.Startup(*tuningPath)
	if err != nil {
		if *tuningPath != "" {
			log.Fatalf("router: -tuning %s: %v", *tuningPath, err)
		}
		log.Printf("router: tuning snapshot unusable, keeping hand-set defaults: %v", err)
	}
	log.Printf("router: tuning: ic0 threshold %d, multicolor width %d (%s)",
		tun.IC0Threshold, tun.MulticolorWidth, tun.Source)
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("router: -replicas is required (comma-separated base URLs)")
	}
	proxy, err := router.NewProxy(router.ProxyOptions{
		Replicas:      urls,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		Retries:       *retries,
		Backoff:       *backoff,
		Precond:       precond,
		Ordering:      ordering,
		Precision:     precision,
	})
	if err != nil {
		log.Fatal(err)
	}
	proxy.Start()
	defer proxy.Close()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: proxy.Routes()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("router: listening on %s, fronting %d replicas: %s", *addr, len(urls), strings.Join(urls, ", "))
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("router: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("router: shutdown: %v", err)
	}
}
