// Arrival plan, endpoint mix, and lattice-key skew: the deterministic,
// side-effect-free half of the load generator. Everything here is a pure
// function of its inputs (plus an explicit rand.Rand), so the tests pin the
// exact schedule and draw sequences without wall-time sleeps.
package main

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Stage is one constant-rate segment of the open-loop arrival plan.
type Stage struct {
	Rate     float64 // arrivals per second
	Duration time.Duration
}

// maxArrivals bounds the expanded schedule: the generator holds every
// arrival offset in memory, so a fat-fingered rate must fail up front, not
// OOM mid-run.
const maxArrivals = 1 << 20

// ParseStages parses a ramp spec "20x30s,50x30s" (30 s at 20 rps, then 30 s
// at 50 rps). An empty spec falls back to a single rate × duration stage.
func ParseStages(spec string, rate float64, duration time.Duration) ([]Stage, error) {
	if strings.TrimSpace(spec) == "" {
		spec = fmt.Sprintf("%gx%s", rate, duration)
	}
	var stages []Stage
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		rateStr, durStr, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("stage %q: want <rate>x<duration>, e.g. 20x30s", part)
		}
		r, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			return nil, fmt.Errorf("stage %q: rate must be a positive number", part)
		}
		d, err := time.ParseDuration(durStr)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("stage %q: duration must be positive, e.g. 30s", part)
		}
		stages = append(stages, Stage{Rate: r, Duration: d})
	}
	return stages, nil
}

// Schedule expands the stages into open-loop arrival offsets from the run
// start: within a stage arrivals are evenly spaced at 1/rate, which is the
// point of open-loop load — the next request fires on schedule whether or
// not the previous response came back, so a slow server accumulates
// in-flight requests instead of silently throttling the generator.
func Schedule(stages []Stage) ([]time.Duration, error) {
	if len(stages) == 0 {
		return nil, errors.New("no stages")
	}
	var out []time.Duration
	var base time.Duration
	for _, st := range stages {
		n := st.Rate * st.Duration.Seconds()
		if n > maxArrivals || float64(len(out))+n > maxArrivals {
			return nil, fmt.Errorf("schedule would hold over %d arrivals; lower the rate or shorten the stages", maxArrivals)
		}
		interval := time.Duration(float64(time.Second) / st.Rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		for i := 0; i < int(n); i++ {
			out = append(out, base+time.Duration(i)*interval)
		}
		base += st.Duration
	}
	if len(out) == 0 {
		return nil, errors.New("stages expand to zero arrivals (rate × duration < 1)")
	}
	return out, nil
}

// Mix is a weighted draw over the three write endpoints.
type Mix struct {
	names   []string
	weights []int
	total   int
}

// ParseMix parses "solve=70,batch=10,jobs=20". Weights are non-negative
// integers with a positive sum; only the solve/batch/jobs endpoints exist.
func ParseMix(spec string) (*Mix, error) {
	m := &Mix{}
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, wStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want <endpoint>=<weight>", part)
		}
		switch name {
		case "solve", "batch", "jobs":
		default:
			return nil, fmt.Errorf("mix entry %q: endpoint must be solve, batch, or jobs", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("mix names %s twice", name)
		}
		seen[name] = true
		w, err := strconv.Atoi(wStr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		m.names = append(m.names, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total <= 0 {
		return nil, errors.New("mix weights sum to zero")
	}
	return m, nil
}

// Pick draws one endpoint name with the configured weights.
func (m *Mix) Pick(r *rand.Rand) string {
	n := r.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.names[i]
		}
		n -= w
	}
	return m.names[len(m.names)-1]
}

// KeyPicker draws lattice keys with configurable hot-set skew: HotFraction
// of draws land uniformly on the first Hot keys, the rest uniformly on the
// whole space. Every key maps to a distinct lattice geometry, so the skew
// directly shapes assembly-cache and shard-affinity behavior under load.
type KeyPicker struct {
	Space       int     // number of distinct lattice keys
	Hot         int     // size of the hot set (first Hot keys)
	HotFraction float64 // fraction of draws confined to the hot set
}

// Validate reports a configuration error, if any.
func (k KeyPicker) Validate() error {
	switch {
	case k.Space < 1:
		return errors.New("key space must be at least 1")
	case k.Hot < 0 || k.Hot > k.Space:
		return fmt.Errorf("hot-key count %d outside [0, key space %d]", k.Hot, k.Space)
	case k.HotFraction < 0 || k.HotFraction > 1 || math.IsNaN(k.HotFraction):
		return fmt.Errorf("hot fraction %v outside [0, 1]", k.HotFraction)
	case k.HotFraction > 0 && k.Hot == 0:
		return errors.New("hot fraction set but hot-key count is 0")
	}
	return nil
}

// Pick draws one key in [0, Space).
func (k KeyPicker) Pick(r *rand.Rand) int {
	if k.Hot > 0 && r.Float64() < k.HotFraction {
		return r.Intn(k.Hot)
	}
	return r.Intn(k.Space)
}
