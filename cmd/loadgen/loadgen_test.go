package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serveapi"
)

// fakeServer mimics the slice of the serve/router surface loadgen touches:
// solve/batch/jobs plus SSE events and a /stats counter document. Every Nth
// job submit is rejected with 429 to exercise the backpressure accounting.
type fakeServer struct {
	requests    atomic.Int64
	solves      atomic.Int64
	submits     atomic.Int64
	rejectEvery int64
}

func (f *fakeServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"requests": %d, "solver": {"solves": %d}, "replicas": [{"submits": %d}]}`,
			f.requests.Load(), f.solves.Load(), f.submits.Load())
	})
	mux.HandleFunc("POST /solve", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		var job serveapi.JobRequest
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil || job.Rows < 1 || job.DeltaT == nil {
			http.Error(w, "bad solve payload", http.StatusBadRequest)
			return
		}
		f.solves.Add(1)
		fmt.Fprint(w, `{"converged": true}`)
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		var batch serveapi.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil || len(batch.Jobs) == 0 {
			http.Error(w, "bad batch payload", http.StatusBadRequest)
			return
		}
		f.solves.Add(int64(len(batch.Jobs)))
		fmt.Fprint(w, `{"results": []}`)
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		var batch serveapi.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil || len(batch.Jobs) == 0 {
			http.Error(w, "bad jobs payload", http.StatusBadRequest)
			return
		}
		n := f.submits.Add(1)
		if f.rejectEvery > 0 && n%f.rejectEvery == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		id := fmt.Sprintf("job-%d", n)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serveapi.SubmitResponse{
			ID: id, State: "pending", Poll: "/jobs/" + id, Events: "/jobs/" + id + "/events",
		})
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: state\ndata: {\"type\":\"state\",\"state\":\"running\"}\n\n")
		fmt.Fprint(w, "event: scenario\ndata: {\"type\":\"scenario\",\"scenario\":0}\n\n")
		fmt.Fprint(w, "event: state\ndata: {\"type\":\"state\",\"state\":\"done\"}\n\n")
	})
	return mux
}

// TestRunSmoke drives the full generator loop against the fake server and
// checks the report invariants: every scheduled arrival accounted for, the
// latency quantiles ordered, 429s filed as rejections not errors, and the
// /stats delta matching the server-side counters.
func TestRunSmoke(t *testing.T) {
	fake := &fakeServer{rejectEvery: 3}
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()

	g := &generator{
		target:     srv.URL,
		client:     srv.Client(),
		sseClient:  srv.Client(),
		sseTimeout: 5 * time.Second,
		sseSample:  1.0, // follow every accepted submit
		rows:       3,
		cols:       3,
		col:        newCollector(),
	}
	if err := g.waitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := g.fetchStats()
	stages := []Stage{{Rate: 400, Duration: 200 * time.Millisecond}}
	arrivals, err := Schedule(stages)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := ParseMix("solve=50,batch=20,jobs=30")
	if err != nil {
		t.Fatal(err)
	}
	wall := g.run(arrivals, mix, KeyPicker{Space: 8, Hot: 2, HotFraction: 0.5}, rand.New(rand.NewSource(42)))
	after := g.fetchStats()

	entries := g.col.entries(wall)
	var total, rejected, errs int64
	for ep, e := range entries {
		if ep == "sse" {
			continue // follow-ups, not scheduled arrivals
		}
		total += e.Count
		rejected += e.Rejected
		errs += e.Errors
		if e.P50MS > e.P95MS || e.P95MS > e.P99MS || e.P99MS > e.MaxMS {
			t.Errorf("%s: quantiles out of order: %+v", ep, e)
		}
		if e.ThroughputRPS <= 0 {
			t.Errorf("%s: non-positive throughput: %+v", ep, e)
		}
	}
	if total != int64(len(arrivals)) {
		t.Errorf("endpoints account for %d requests, want %d scheduled arrivals", total, len(arrivals))
	}
	if errs != 0 {
		t.Errorf("clean run recorded %d errors", errs)
	}
	if rejected == 0 {
		t.Error("server rejected every 3rd submit but the report counts no 429s")
	}
	if entries["jobs"] == nil || entries["jobs"].Rejected != rejected {
		t.Errorf("rejections filed outside the jobs endpoint: %+v", entries)
	}
	// Every accepted submit was followed to its terminal SSE event.
	accepted := entries["jobs"].Count - entries["jobs"].Rejected
	if sse := entries["sse"]; sse == nil || sse.Count != accepted || sse.Errors != 0 {
		t.Errorf("sse follow-ups = %+v, want %d clean terminal events", entries["sse"], accepted)
	}

	delta := statsDelta(before, after)
	if delta["requests"] != float64(total) {
		t.Errorf("stats_delta[requests] = %v, want %v", delta["requests"], total)
	}
	if delta["solver.solves"] <= 0 {
		t.Errorf("nested counter delta missing: %v", delta)
	}
	if delta["replicas[0].submits"] != float64(entries["jobs"].Count) {
		t.Errorf("array-leaf delta = %v, want %d", delta["replicas[0].submits"], entries["jobs"].Count)
	}
}

// TestRunCountsServerErrors: non-2xx answers (other than 429) must land in
// the error column the -max-error-rate gate reads.
func TestRunCountsServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	g := &generator{
		target: srv.URL, client: srv.Client(), sseClient: srv.Client(),
		sseTimeout: time.Second, rows: 3, cols: 3, col: newCollector(),
	}
	arrivals, err := Schedule([]Stage{{Rate: 100, Duration: 100 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := ParseMix("solve=1")
	if err != nil {
		t.Fatal(err)
	}
	g.run(arrivals, mix, KeyPicker{Space: 1}, rand.New(rand.NewSource(1)))
	count, errs := g.col.totals()
	if count == 0 || errs != count {
		t.Errorf("500-only server: %d/%d requests filed as errors", errs, count)
	}
}

// TestWarmCoversEveryKey: the warmup pass must solve each key exactly once
// (deterministic coverage is its whole point — a random pass can miss one)
// and must survive a failing target without aborting the run.
func TestWarmCoversEveryKey(t *testing.T) {
	fake := &fakeServer{}
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()
	g := &generator{
		target: srv.URL, client: srv.Client(), sseClient: srv.Client(),
		rows: 3, cols: 3, col: newCollector(),
	}
	g.warm(5)
	if got := fake.solves.Load(); got != 5 {
		t.Errorf("warm(5) issued %d solves, want one per key", got)
	}
	if count, _ := g.col.totals(); count != 0 {
		t.Errorf("warmup requests leaked into the report: %d recorded", count)
	}

	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer down.Close()
	g2 := &generator{target: down.URL, client: down.Client(), sseClient: down.Client(), rows: 3, cols: 3, col: newCollector()}
	g2.warm(3) // must not panic or exit
}

func TestWaitReadyTimesOut(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "warming up", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	g := &generator{target: srv.URL, client: srv.Client(), col: newCollector()}
	if err := g.waitReady(300 * time.Millisecond); err == nil {
		t.Error("waitReady returned nil against a never-ready target")
	}
}

// TestReportShapeForIngest locks the report fields benchcheck -ingest
// depends on: the schema marker and the endpoints section shape.
func TestReportShapeForIngest(t *testing.T) {
	col := newCollector()
	col.record("solve", 12.5, 200)
	col.record("solve", 40, 200)
	col.record("solve", 9, 429)
	rep := Report{
		Schema:    "loadgen-report/v1",
		Target:    "http://example",
		Endpoints: col.entries(2 * time.Second),
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema    string `json:"schema"`
		Endpoints map[string]struct {
			Count    int64   `json:"count"`
			Rejected int64   `json:"rejected"`
			P99MS    float64 `json:"p99_ms"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(decoded.Schema, "loadgen-report/") {
		t.Errorf("schema marker %q", decoded.Schema)
	}
	ep := decoded.Endpoints["solve"]
	if ep.Count != 3 || ep.Rejected != 1 || ep.P99MS != 40 {
		t.Errorf("endpoint row: %+v", ep)
	}
}
