// Latency collection and the machine-readable report. The report's
// per-endpoint rows reuse internal/solver/tuning's LoadgenEntry so
// `benchcheck -ingest` folds them into the BENCH_global.json host profile
// without a translation layer.
package main

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/solver/tuning"
)

// Report is the loadgen output, written as JSON to -out (or stdout).
type Report struct {
	Schema string `json:"schema"` // "loadgen-report/v1"
	Target string `json:"target"`
	// Profile is the host-profile key of the machine the generator ran on
	// (the client side — pass it to benchcheck -profile only when the server
	// ran on the same host).
	Profile   string       `json:"profile"`
	Config    ReportConfig `json:"config"`
	DurationS float64      `json:"duration_s"`
	Arrivals  int          `json:"arrivals"`
	// Endpoints holds one latency/throughput row per traffic class:
	// solve/batch/jobs are request latencies, sse is submit-to-terminal-event
	// latency of the sampled job subscriptions.
	Endpoints map[string]*tuning.LoadgenEntry `json:"endpoints"`
	// StatsDelta is the numeric-leaf delta of the server's /stats between
	// run start and end (dotted paths) — server-side truth for cache hits,
	// failovers, and rejections to set against the client-side view.
	StatsDelta map[string]float64 `json:"stats_delta,omitempty"`
}

// ReportConfig echoes the generator configuration that produced the run.
type ReportConfig struct {
	Stages      string  `json:"stages"`
	Mix         string  `json:"mix"`
	KeySpace    int     `json:"key_space"`
	HotKeys     int     `json:"hot_keys"`
	HotFraction float64 `json:"hot_fraction"`
	SSESample   float64 `json:"sse_sample"`
	Seed        int64   `json:"seed"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
}

// digest accumulates one endpoint's samples.
type digest struct {
	ms       []float64
	errors   int64
	rejected int64
}

// collector gathers samples from the in-flight request goroutines.
type collector struct {
	mu  sync.Mutex
	eps map[string]*digest
}

func newCollector() *collector {
	return &collector{eps: make(map[string]*digest)}
}

// record files one sample: status 0 means a transport error, 429 counts as
// rejected (backpressure working as designed, gated separately from
// errors), any other non-2xx as an error.
func (c *collector) record(ep string, ms float64, status int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.eps[ep]
	if d == nil {
		d = &digest{}
		c.eps[ep] = d
	}
	d.ms = append(d.ms, ms)
	switch {
	case status == http.StatusTooManyRequests:
		d.rejected++
	case status < 200 || status > 299:
		d.errors++
	}
}

// entries folds the digests into report rows. wall is the full run length
// (arrival span plus drain), the denominator for throughput.
func (c *collector) entries(wall time.Duration) map[string]*tuning.LoadgenEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*tuning.LoadgenEntry, len(c.eps))
	secs := wall.Seconds()
	for ep, d := range c.eps {
		sorted := append([]float64(nil), d.ms...)
		sort.Float64s(sorted)
		e := &tuning.LoadgenEntry{
			Count:    int64(len(d.ms)),
			Errors:   d.errors,
			Rejected: d.rejected,
			P50MS:    percentile(sorted, 0.50),
			P95MS:    percentile(sorted, 0.95),
			P99MS:    percentile(sorted, 0.99),
		}
		if len(sorted) > 0 {
			e.MaxMS = round2(sorted[len(sorted)-1])
		}
		if secs > 0 {
			e.ThroughputRPS = round2(float64(len(d.ms)) / secs)
		}
		out[ep] = e
	}
	return out
}

// totals returns the overall request and error counts for the exit gate
// (rejections are excluded — 429 under deliberate overload is the server
// keeping its promises, not a failure).
func (c *collector) totals() (count, errors int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.eps {
		count += int64(len(d.ms))
		errors += d.errors
	}
	return count, errors
}

// percentile returns the q-quantile of an ascending slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return round2(sorted[idx])
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// statsDelta diffs two /stats documents leaf by leaf: every numeric leaf is
// flattened to a dotted path and subtracted. Working on paths rather than a
// decoded struct keeps the generator agnostic to whose stats shape it got —
// cmd/serve's flat sections and cmd/router's fleet aggregate both work.
func statsDelta(before, after []byte) map[string]float64 {
	b := flattenStats(before)
	a := flattenStats(after)
	if a == nil {
		return nil
	}
	out := make(map[string]float64, len(a))
	for path, av := range a {
		if bv, ok := b[path]; ok {
			if d := round2(av - bv); d != 0 {
				out[path] = d
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// flattenStats maps every numeric leaf of a JSON document to its dotted
// path. Arrays (per-replica breakdowns) are indexed into the path.
func flattenStats(raw []byte) map[string]float64 {
	var doc any
	if len(raw) == 0 || json.Unmarshal(raw, &doc) != nil {
		return nil
	}
	out := make(map[string]float64)
	var walk func(path string, v any)
	walk = func(path string, v any) {
		switch t := v.(type) {
		case float64:
			out[path] = t
		case map[string]any:
			for k, c := range t {
				p := k
				if path != "" {
					p = path + "." + k
				}
				walk(p, c)
			}
		case []any:
			for i, c := range t {
				walk(path+"["+strconv.Itoa(i)+"]", c)
			}
		}
	}
	walk("", doc)
	return out
}
