package main

import (
	"math/rand"
	"testing"
	"time"
)

// TestScheduleDeterministicArrivals pins the exact open-loop plan with no
// wall-time involvement: evenly spaced within a stage, stages concatenated
// at their nominal boundaries, identical across calls.
func TestScheduleDeterministicArrivals(t *testing.T) {
	stages := []Stage{
		{Rate: 10, Duration: time.Second},
		{Rate: 20, Duration: 500 * time.Millisecond},
	}
	got, err := Schedule(stages)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("schedule holds %d arrivals, want 20 (10×1s + 20×0.5s)", len(got))
	}
	// Stage 1: every 100 ms from 0; stage 2: every 50 ms from the 1 s mark.
	for i := 0; i < 10; i++ {
		if want := time.Duration(i) * 100 * time.Millisecond; got[i] != want {
			t.Errorf("arrival %d at %v, want %v", i, got[i], want)
		}
	}
	for i := 0; i < 10; i++ {
		if want := time.Second + time.Duration(i)*50*time.Millisecond; got[10+i] != want {
			t.Errorf("arrival %d at %v, want %v", 10+i, got[10+i], want)
		}
	}
	again, err := Schedule(stages)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("schedule not deterministic at %d: %v vs %v", i, got[i], again[i])
		}
	}
}

func TestScheduleRejectsRunaway(t *testing.T) {
	if _, err := Schedule([]Stage{{Rate: 1e9, Duration: time.Hour}}); err == nil {
		t.Error("runaway schedule accepted")
	}
	if _, err := Schedule(nil); err == nil {
		t.Error("empty stage list accepted")
	}
	if _, err := Schedule([]Stage{{Rate: 0.5, Duration: time.Second}}); err == nil {
		t.Error("zero-arrival schedule accepted")
	}
}

func TestParseStages(t *testing.T) {
	got, err := ParseStages("", 20, 30*time.Second)
	if err != nil || len(got) != 1 || got[0].Rate != 20 || got[0].Duration != 30*time.Second {
		t.Errorf("fallback stage = %+v, %v", got, err)
	}
	got, err = ParseStages("10x30s, 50x1m", 0, 0)
	if err != nil || len(got) != 2 || got[1].Rate != 50 || got[1].Duration != time.Minute {
		t.Errorf("ramp spec = %+v, %v", got, err)
	}
	for _, bad := range []string{"10", "x30s", "10x", "0x30s", "-5x30s", "NaNx30s", "10x-30s", "10x30s,,", "10x30s,bad"} {
		if _, err := ParseStages(bad, 20, time.Second); err == nil {
			t.Errorf("ParseStages(%q) accepted", bad)
		}
	}
	// The fallback flags flow through the same validation.
	if _, err := ParseStages("", -1, time.Second); err == nil {
		t.Error("negative fallback rate accepted")
	}
}

func TestParseMixAndPick(t *testing.T) {
	m, err := ParseMix("solve=60,batch=15,jobs=25")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		counts[m.Pick(rng)]++
	}
	if counts["solve"] < 5000 || counts["batch"] < 500 || counts["jobs"] < 1500 {
		t.Errorf("draw distribution off the 60/15/25 weights: %v", counts)
	}
	only, err := ParseMix("batch=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if only.Pick(rng) != "batch" {
			t.Fatal("single-entry mix drew another endpoint")
		}
	}
	// Zero-weight endpoints are legal and never drawn.
	noJobs, err := ParseMix("solve=1,jobs=0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if noJobs.Pick(rng) == "jobs" {
			t.Fatal("zero-weight endpoint drawn")
		}
	}
	for _, bad := range []string{"", "solve", "solve=x", "solve=-1", "stats=5", "solve=0,jobs=0", "solve=1,solve=2"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestKeyPickerSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hot := KeyPicker{Space: 64, Hot: 2, HotFraction: 1}
	for i := 0; i < 200; i++ {
		if k := hot.Pick(rng); k >= 2 {
			t.Fatalf("hot-fraction 1 drew key %d outside the hot set", k)
		}
	}
	uniform := KeyPicker{Space: 8, Hot: 2, HotFraction: 0}
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		k := uniform.Pick(rng)
		if k < 0 || k >= 8 {
			t.Fatalf("key %d outside the space", k)
		}
		seen[k] = true
	}
	if len(seen) != 8 {
		t.Errorf("uniform draw covered %d/8 keys", len(seen))
	}
	for _, bad := range []KeyPicker{
		{Space: 0},
		{Space: 4, Hot: 5},
		{Space: 4, Hot: -1},
		{Space: 4, Hot: 2, HotFraction: 1.5},
		{Space: 4, Hot: 0, HotFraction: 0.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("KeyPicker %+v accepted", bad)
		}
	}
}

// FuzzLoadgenConfig throws arbitrary stage/mix/skew specs at the parsers:
// whatever they accept must expand into a well-formed plan (monotone
// bounded arrivals, draws inside the declared space), and nothing may
// panic or hang.
func FuzzLoadgenConfig(f *testing.F) {
	f.Add("20x30s", "solve=60,batch=15,jobs=25", 16, 2, 0.8)
	f.Add("", "solve=1", 1, 0, 0.0)
	f.Add("10x30s,50x1m", "jobs=100", 64, 64, 1.0)
	f.Add("1e6x1h", "solve=0", -1, 9, 2.0)
	f.Fuzz(func(t *testing.T, spec, mixSpec string, space, hot int, hotFrac float64) {
		stages, err := ParseStages(spec, 20, time.Second)
		if err == nil {
			for _, st := range stages {
				if st.Rate <= 0 || st.Duration <= 0 {
					t.Fatalf("ParseStages(%q) accepted non-positive stage %+v", spec, st)
				}
			}
			arrivals, err := Schedule(stages)
			if err == nil {
				if len(arrivals) == 0 || len(arrivals) > maxArrivals {
					t.Fatalf("schedule size %d outside (0, %d]", len(arrivals), maxArrivals)
				}
				for i := 1; i < len(arrivals); i++ {
					if arrivals[i] < arrivals[i-1] {
						t.Fatalf("arrivals not monotone at %d: %v < %v", i, arrivals[i], arrivals[i-1])
					}
				}
			}
		}
		rng := rand.New(rand.NewSource(1))
		if m, err := ParseMix(mixSpec); err == nil {
			for i := 0; i < 32; i++ {
				switch m.Pick(rng) {
				case "solve", "batch", "jobs":
				default:
					t.Fatalf("ParseMix(%q) drew an unknown endpoint", mixSpec)
				}
			}
		}
		kp := KeyPicker{Space: space, Hot: hot, HotFraction: hotFrac}
		if kp.Validate() == nil {
			for i := 0; i < 32; i++ {
				if k := kp.Pick(rng); k < 0 || k >= kp.Space {
					t.Fatalf("KeyPicker %+v drew %d outside [0,%d)", kp, k, kp.Space)
				}
			}
		}
	})
}
