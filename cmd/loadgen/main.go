// Command loadgen is the open-loop traffic harness that closes the
// measurement loop for the serving layer: it fires a fixed-arrival-rate mix
// of synchronous /solve, /batch, and async /jobs traffic (with sampled SSE
// subscriptions) at a cmd/serve or cmd/router target and emits a
// machine-readable JSON report — per-endpoint p50/p95/p99/max latency,
// throughput, error/429 counts, and the server's /stats delta over the run.
// `benchcheck -ingest` folds the report into BENCH_global.json's host
// profiles and gates p99 regressions (docs/MEASUREMENT.md).
//
// Open-loop means arrivals are scheduled by rate alone: a request fires at
// its appointed offset whether or not earlier responses came back, so
// server slowdowns surface as latency and backlog instead of silently
// throttling the generator (the coordinated-omission trap of closed-loop
// harnesses).
//
// The lattice-key skew knobs shape cache and shard behavior: every key maps
// to a distinct lattice geometry (its own assembly-cache entry and, behind
// cmd/router, its own shard placement), so -hot-keys/-hot-fraction move the
// workload between cache-friendly hot-key traffic and cache-hostile uniform
// traffic without touching the server.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8080 -rate 20 -duration 60s -out report.json
//	loadgen -target http://127.0.0.1:8080 -stages 10x30s,50x30s \
//	    -mix solve=60,batch=15,jobs=25 -hot-keys 2 -hot-fraction 0.8
//
// -warmup solves every key once before the clock starts, so the report
// measures steady state rather than the one-shot ROM/assembly builds.
// -warmup-only does just that and exits: warm each replica of a fleet
// directly before loading the router (replicas do not share in-memory
// caches, so a failover onto an unwarmed replica pays a cold build).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/serveapi"
	"repro/internal/solver/tuning"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "base URL of the cmd/serve or cmd/router instance under load")
	rate := flag.Float64("rate", 20, "arrival rate in requests/s (ignored when -stages is set)")
	duration := flag.Duration("duration", 30*time.Second, "run length (ignored when -stages is set)")
	stagesSpec := flag.String("stages", "", "ramp spec <rate>x<duration>[,...], e.g. 10x30s,50x30s; overrides -rate/-duration")
	mixSpec := flag.String("mix", "solve=60,batch=15,jobs=25", "endpoint weights")
	keySpace := flag.Int("key-space", 16, "number of distinct lattice keys (each is its own geometry, cache entry, and shard placement)")
	hotKeys := flag.Int("hot-keys", 2, "size of the hot key set")
	hotFraction := flag.Float64("hot-fraction", 0.0, "fraction of requests confined to the hot keys (0 = uniform)")
	sseSample := flag.Float64("sse-sample", 0.25, "fraction of submitted jobs whose SSE event stream is followed to a terminal state")
	rows := flag.Int("rows", 3, "lattice rows per request")
	cols := flag.Int("cols", 3, "lattice cols per request")
	seed := flag.Int64("seed", 1, "PRNG seed for the mix/key/deltaT draws (the draw sequence is deterministic per seed)")
	reqTimeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	sseTimeout := flag.Duration("sse-timeout", 60*time.Second, "per-subscription SSE timeout")
	readyWait := flag.Duration("ready-wait", 30*time.Second, "how long to wait for the target's /readyz before starting")
	warmup := flag.Bool("warmup", false,
		"solve every key once, sequentially, before the measured run (covers the one-shot ROM/assembly builds so the report measures steady state)")
	warmupOnly := flag.Bool("warmup-only", false,
		"warm every key and exit without running the schedule or writing a report (warm each replica of a fleet directly before loading the router: replicas do not share in-memory caches)")
	out := flag.String("out", "", "report path (empty = stdout)")
	maxErrorRate := flag.Float64("max-error-rate", 0.01, "exit non-zero when errors/requests exceeds this (429s excluded: backpressure is not an error)")
	flag.Parse()

	stages, err := ParseStages(*stagesSpec, *rate, *duration)
	if err != nil {
		fatal(err)
	}
	mix, err := ParseMix(*mixSpec)
	if err != nil {
		fatal(err)
	}
	picker := KeyPicker{Space: *keySpace, Hot: *hotKeys, HotFraction: *hotFraction}
	if err := picker.Validate(); err != nil {
		fatal(err)
	}
	arrivals, err := Schedule(stages)
	if err != nil {
		fatal(err)
	}

	g := &generator{
		target:     strings.TrimRight(*target, "/"),
		client:     &http.Client{Timeout: *reqTimeout},
		sseClient:  &http.Client{}, // streams outlive any fixed body timeout; the per-subscription context bounds them
		sseTimeout: *sseTimeout,
		sseSample:  *sseSample,
		rows:       *rows,
		cols:       *cols,
		col:        newCollector(),
	}
	if err := g.waitReady(*readyWait); err != nil {
		fatal(err)
	}
	if *warmup || *warmupOnly {
		g.warm(*keySpace)
		if *warmupOnly {
			return
		}
	}
	before := g.fetchStats()
	fmt.Fprintf(os.Stderr, "loadgen: %d arrivals over %d stage(s) against %s\n", len(arrivals), len(stages), g.target)
	wall := g.run(arrivals, mix, picker, rand.New(rand.NewSource(*seed)))
	after := g.fetchStats()

	rep := Report{
		Schema:  "loadgen-report/v1",
		Target:  g.target,
		Profile: tuning.Key(runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Config: ReportConfig{
			Stages:      *stagesSpec,
			Mix:         *mixSpec,
			KeySpace:    *keySpace,
			HotKeys:     *hotKeys,
			HotFraction: *hotFraction,
			SSESample:   *sseSample,
			Seed:        *seed,
			Rows:        *rows,
			Cols:        *cols,
		},
		DurationS:  round2(wall.Seconds()),
		Arrivals:   len(arrivals),
		Endpoints:  g.col.entries(wall),
		StatsDelta: statsDelta(before, after),
	}
	if rep.Config.Stages == "" {
		rep.Config.Stages = fmt.Sprintf("%gx%s", *rate, *duration)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}

	count, errs := g.col.totals()
	fmt.Fprintf(os.Stderr, "loadgen: %d requests, %d errors in %.1fs\n", count, errs, wall.Seconds())
	if count > 0 && float64(errs)/float64(count) > *maxErrorRate {
		fatal(fmt.Errorf("error rate %.3f exceeds -max-error-rate %.3f", float64(errs)/float64(count), *maxErrorRate))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

// generator holds the run-wide state shared by the request goroutines.
type generator struct {
	target     string
	client     *http.Client
	sseClient  *http.Client
	sseTimeout time.Duration
	sseSample  float64
	rows, cols int
	col        *collector
}

// waitReady polls the target's /readyz until it answers 200 or the deadline
// passes, so a just-booted server's warmup does not read as latency.
func (g *generator) waitReady(wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := g.client.Get(g.target + "/readyz")
		if err == nil {
			drain(resp)
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("target %s not ready within %s", g.target, wait)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// warm solves each lattice key once, sequentially, before the clock starts:
// the first request for a geometry pays its one-shot ROM and assembly build
// (seconds, vs milliseconds warm), and a random warmup pass can miss a key,
// so deterministic coverage is the only way a steady-state report is
// reproducible. Failures are logged, not fatal — the measured run will
// surface a genuinely broken target on its own.
func (g *generator) warm(space int) {
	t0 := time.Now()
	for key := 0; key < space; key++ {
		payload := g.payload("solve", key, 40)
		resp, err := g.sseClient.Post(g.target+paths["solve"], "application/json", bytes.NewReader(payload))
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: warmup key %d: %v\n", key, err)
			continue
		}
		drain(resp)
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "loadgen: warmup key %d: status %d\n", key, resp.StatusCode)
		}
	}
	fmt.Fprintf(os.Stderr, "loadgen: warmed %d keys in %.1fs\n", space, time.Since(t0).Seconds())
}

// fetchStats snapshots the target's /stats (nil when unavailable — the
// report simply omits the delta then).
func (g *generator) fetchStats() []byte {
	resp, err := g.client.Get(g.target + "/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil
	}
	return raw
}

// run fires the schedule. All randomness (mix, key, deltaT, SSE sampling)
// is drawn on this goroutine in arrival order, so the request sequence is a
// pure function of the seed; only the network I/O fans out.
//
//stressvet:gang -- one goroutine per scheduled arrival (finite schedule, capped at maxArrivals), WaitGroup-joined before the report is built; unbounded in-flight count is the point of open-loop load
func (g *generator) run(arrivals []time.Duration, mix *Mix, picker KeyPicker, rng *rand.Rand) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for _, at := range arrivals {
		if d := time.Until(start.Add(at)); d > 0 {
			time.Sleep(d)
		}
		ep := mix.Pick(rng)
		key := picker.Pick(rng)
		deltaT := 40 + float64(rng.Intn(12))*5 // sweep the load point so warm-start paths engage
		follow := ep == "jobs" && rng.Float64() < g.sseSample
		payload := g.payload(ep, key, deltaT)
		wg.Add(1)
		go func(ep string, payload []byte, follow bool) {
			defer wg.Done()
			g.fire(ep, payload, follow)
		}(ep, payload, follow)
	}
	wg.Wait()
	return time.Since(start)
}

// payload builds the request body for one arrival. Each key is a distinct
// pitch (so a distinct lattice geometry, assembly-cache entry, and shard
// placement); batches sweep three load points of one key, the paper's
// canonical sweep workload.
func (g *generator) payload(ep string, key int, deltaT float64) []byte {
	job := func(dt float64) serveapi.JobRequest {
		return serveapi.JobRequest{
			Pitch:  12 + 0.5*float64(key),
			Rows:   g.rows,
			Cols:   g.cols,
			DeltaT: &dt,
		}
	}
	var body any
	switch ep {
	case "solve":
		body = job(deltaT)
	default: // batch and jobs share the BatchRequest shape
		body = serveapi.BatchRequest{Jobs: []serveapi.JobRequest{
			job(deltaT), job(deltaT + 5), job(deltaT + 10),
		}}
	}
	blob, err := json.Marshal(body)
	if err != nil {
		panic(err) // static request shapes cannot fail to marshal
	}
	return blob
}

var paths = map[string]string{"solve": "/solve", "batch": "/batch", "jobs": "/jobs"}

// fire sends one request and records its latency; for sampled job
// submissions it then follows the SSE stream to a terminal state and
// records the submit-to-terminal latency as the "sse" endpoint.
func (g *generator) fire(ep string, payload []byte, follow bool) {
	t0 := time.Now()
	resp, err := g.client.Post(g.target+paths[ep], "application/json", bytes.NewReader(payload))
	if err != nil {
		g.col.record(ep, ms(time.Since(t0)), 0)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	g.col.record(ep, ms(time.Since(t0)), resp.StatusCode)
	if !follow || resp.StatusCode != http.StatusAccepted {
		return
	}
	var sub serveapi.SubmitResponse
	if json.Unmarshal(body, &sub) != nil || sub.Events == "" {
		return
	}
	g.followSSE(sub.Events, t0)
}

// terminalStates are the job states that end an SSE lifecycle stream.
var terminalStates = map[string]bool{"done": true, "failed": true, "cancelled": true}

// followSSE reads the job's event stream until a terminal event (recorded
// as "sse" latency since submit) or the subscription timeout (recorded as
// an error — a stream that never terminates is a served-side bug).
func (g *generator) followSSE(eventsPath string, submitted time.Time) {
	ctx, cancel := context.WithTimeout(context.Background(), g.sseTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.target+eventsPath, nil)
	if err != nil {
		g.col.record("sse", ms(time.Since(submitted)), 0)
		return
	}
	resp, err := g.sseClient.Do(req)
	if err != nil {
		g.col.record("sse", ms(time.Since(submitted)), 0)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		g.col.record("sse", ms(time.Since(submitted)), resp.StatusCode)
		return
	}
	// The server names events by jobqueue type ("state", "scenario") and
	// carries the actual lifecycle state in the data JSON.
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev struct {
			Type  string `json:"type"`
			State string `json:"state"`
		}
		if json.Unmarshal([]byte(data), &ev) == nil && ev.Type == "state" && terminalStates[ev.State] {
			g.col.record("sse", ms(time.Since(submitted)), http.StatusOK)
			return
		}
	}
	g.col.record("sse", ms(time.Since(submitted)), 0) // stream ended without a terminal event
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
