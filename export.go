package morestress

import (
	"io"

	"repro/internal/fem"
	"repro/internal/superpose"
)

// Field post-processing and export helpers re-exported from the internal
// packages for downstream users.

// VonMises returns the von Mises equivalent of a Voigt stress tensor
// [σxx, σyy, σzz, σyz, σxz, σxy].
func VonMises(s [6]float64) float64 { return fem.VonMises(s) }

// PrincipalStresses returns σ1 ≥ σ2 ≥ σ3 of a Voigt stress tensor.
func PrincipalStresses(s [6]float64) [3]float64 { return fem.PrincipalStresses(s) }

// Tresca returns the maximum-shear criterion value σ1 − σ3.
func Tresca(s [6]float64) float64 { return fem.Tresca(s) }

// StressAt evaluates the reconstructed stress tensor at a global point of a
// solved array (block-local reconstruction per Eq. 15).
func (r *ArrayResult) StressAt(p Vec3) [6]float64 { return r.Solution.StressAt(p) }

// DisplacementAt evaluates the reconstructed displacement at a global point.
func (r *ArrayResult) DisplacementAt(p Vec3) [3]float64 { return r.Solution.DisplacementAt(p) }

// StressAt evaluates the reconstructed stress tensor at a sub-model-local
// point of an embedded solve.
func (r *EmbeddedResult) StressAt(p Vec3) [6]float64 { return r.Solution.StressAt(p) }

// SaveKernel persists the superposition baseline's one-shot kernel.
func (s *Superposition) SaveKernel(w io.Writer) error { return s.Kernel.Save(w) }

// LoadSuperposition restores a saved kernel; cfg supplies worker counts and
// must match the kernel's geometry.
func LoadSuperposition(cfg Config, r io.Reader) (*Superposition, error) {
	k, err := superpose.LoadKernel(r)
	if err != nil {
		return nil, err
	}
	return &Superposition{Kernel: k, cfg: cfg}, nil
}
