package morestress

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/romcache"
	"repro/internal/solver"
)

// SolverChoice selects the global-stage solver of a batch job.
type SolverChoice int

const (
	// SolveGMRES is the paper's recommendation (default).
	SolveGMRES SolverChoice = iota
	// SolveCG uses preconditioned conjugate gradients on the SPD global
	// matrix (the preconditioner comes from Job.Options.Precond, default
	// auto-selected).
	SolveCG
	// SolveDirect factors the reduced global matrix with sparse Cholesky.
	// Under the Engine, repeated Direct jobs on the same unit cell, array
	// size, and boundary condition share one factorization, so batches of
	// load sweeps pay it once.
	SolveDirect
)

// Job describes one scenario for the batch engine: which unit cell (and
// therefore which ROM), the array dimensions, the thermal load, and the
// global solver. Jobs with equal unit-cell configurations share one ROM, and
// jobs on the same lattice additionally share one reduced-global assembly.
type Job struct {
	// Config is the unit-cell configuration; its ROM is obtained from the
	// engine cache (the local stage runs only on the first use).
	Config Config
	// Rows, Cols are the array dimensions in blocks.
	Rows, Cols int
	// DeltaT is the thermal load in °C.
	DeltaT float64
	// DeltaTMap optionally overrides DeltaT per block, indexed (row, col).
	DeltaTMap func(row, col int) float64
	// GridSamples is the per-block mid-plane sampling resolution
	// (0 disables field sampling).
	GridSamples int
	// Solver selects the global solver.
	Solver SolverChoice
	// Options tunes the iterative solvers, including the preconditioner
	// (Options.Precond, default PrecondAuto).
	Options SolverOptions
}

// JobResult is the outcome of one batch job.
type JobResult struct {
	// Index is the job's position in the BatchSolve input.
	Index int
	// Err is the job's failure, nil on success. Failures are per-job: one
	// bad job does not abort the batch.
	Err error
	// Result is the solved array (nil when Err is set).
	Result *ArrayResult
	// CacheHit reports whether the job's ROM came from the cache (memory,
	// disk, or an in-flight build) instead of running the local stage.
	CacheHit bool
	// LocalWait is the time spent obtaining the ROM: the full local stage
	// on a cache miss, near zero on a hit.
	LocalWait time.Duration
	// Total is the job's wall time (ROM wait + global stage).
	Total time.Duration
}

// BatchStats aggregates a BatchSolve call.
type BatchStats struct {
	// Jobs is the number of jobs submitted; Errors counts failures.
	Jobs, Errors int
	// CacheHits/CacheMisses partition the jobs by ROM cache outcome.
	CacheHits, CacheMisses int
	// Wall is the batch wall time across the worker pool.
	Wall time.Duration
	// LocalTime and GlobalTime are the per-job times summed over the
	// batch (CPU-time-like; they exceed Wall under concurrency).
	LocalTime, GlobalTime time.Duration
	// Iterations sums the iterative global-solve iteration counts of the
	// batch; WarmStarts counts the solves that were seeded from a previous
	// solution on the same lattice. Together they quantify the warm-start
	// payoff of a ΔT sweep.
	Iterations int64
	WarmStarts int
}

// BatchResult is the outcome of a BatchSolve call.
type BatchResult struct {
	// Results holds one entry per job, in input order.
	Results []JobResult
	// Stats aggregates the batch.
	Stats BatchStats
}

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Workers bounds the number of concurrently solving jobs
	// (default GOMAXPROCS).
	Workers int
	// CacheBytes is the in-memory ROM cache byte budget: models are
	// admitted against the sum of their MemoryBytes, so one huge lattice
	// cannot evict a whole working set of small ones. When both CacheBytes
	// and CacheEntries are zero the budget defaults to
	// romcache.DefaultMaxBytes (2 GiB).
	CacheBytes int64
	// CacheEntries optionally caps the ROM cache by model count on top of
	// the byte budget (0 = no entry cap).
	CacheEntries int
	// CacheDir enables disk spill of built ROMs (empty disables).
	CacheDir string
	// BuildWorkers is the local-stage parallelism of cache-miss builds
	// (default GOMAXPROCS).
	BuildWorkers int
	// MaxFactors bounds the shared Cholesky factorization cache used by
	// SolveDirect jobs by entry count (default 16).
	MaxFactors int
	// FactorBytes additionally bounds the factorization cache by the sum
	// of the factors' MemoryBytes (0 = entry-count bound only).
	FactorBytes int64
	// MaxAssemblies bounds the shared assemble-once cache of reduced
	// global systems by entry count (default 16). Every solver kind uses
	// it: a ΔT sweep on one lattice assembles the global matrix once.
	MaxAssemblies int
	// AssemblyBytes additionally bounds the assembly cache by the sum of
	// the assemblies' MemoryBytes (0 = entry-count bound only).
	AssemblyBytes int64
	// DisableWarmStart turns off initial-guess reuse: by default the
	// engine seeds each iterative solve on a lattice with the most recent
	// solution of that lattice (scaled across uniform-ΔT scenarios),
	// falling back to a cold solve on divergence.
	DisableWarmStart bool
	// SharedCache, when non-nil, is used as the engine's ROM cache instead
	// of building a private one (CacheBytes/CacheEntries/CacheDir/
	// BuildWorkers are then ignored). The ROM cache is content-addressed
	// and shard-agnostic, so in-process engine shards share one: each
	// distinct unit cell pays the local stage once per process, while the
	// lattice-keyed caches (assemblies, preconditioners, factors, seeds)
	// stay private per shard.
	SharedCache *romcache.Cache
}

// EngineStats is a snapshot of an engine's lifetime counters.
type EngineStats struct {
	// Cache reports the ROM cache.
	Cache romcache.Stats
	// JobsDone and JobsFailed count completed jobs since engine creation.
	JobsDone, JobsFailed int64
	// Factorizations counts Cholesky factorizations performed for
	// SolveDirect jobs; FactorHits counts Direct solves that reused one.
	Factorizations, FactorHits int64
	// Assemblies counts reduced-global assemblies built; AssemblyHits
	// counts solves that reused a cached one instead of re-scattering the
	// global matrix.
	Assemblies, AssemblyHits int64
	// IterativeSolves counts global solves through GMRES/PCG. WarmStarts
	// of them were seeded from a previous solution; WarmFallbacks
	// diverged under the seed and were retried cold. The warm-start hit
	// rate is WarmStarts / IterativeSolves.
	IterativeSolves, WarmStarts, WarmFallbacks int64
	// Iterations sums the iteration counts of the iterative solves.
	Iterations int64
	// PrecondBuilds counts preconditioner constructions for iterative
	// solves; PrecondHits counts solves that reused one cached on the
	// lattice's Assembly. A preconditioner is built at most once per
	// (lattice, PrecondKind, Ordering), so warm-cache scenarios are all
	// hits.
	PrecondBuilds, PrecondHits int64
	// OrderingCounts tallies iterative solves by the symmetric ordering
	// their preconditioner factored under (keys are the
	// solver.OrderingKind spellings: "natural", "rcm", "multicolor").
	// Orderings that never ran are omitted.
	OrderingCounts map[string]int64
	// PrecisionCounts tallies iterative solves by the storage precision of
	// their preconditioner factor (keys are the solver.Precision spellings:
	// "float64", "float32"). Precisions that never ran are omitted.
	PrecisionCounts map[string]int64
	// Refinements sums the iterative-refinement restarts performed by
	// float32-factor solves; PrecisionFallbacks counts solves whose float32
	// factor exhausted the refinement budget and were retried against a
	// float64 rebuild.
	Refinements, PrecisionFallbacks int64
}

// Merge adds o's counters into s, including the ROM cache section and the
// per-ordering tallies. The sharded router uses it to present N engines as
// one: the merged snapshot is what a single engine serving the union of the
// shards' traffic would have reported. Callers whose shards share one ROM
// cache should zero o.Cache on all but one shard first, or every engine
// re-reports the same cache.
func (s *EngineStats) Merge(o EngineStats) {
	s.Cache.Hits += o.Cache.Hits
	s.Cache.Misses += o.Cache.Misses
	s.Cache.DiskHits += o.Cache.DiskHits
	s.Cache.Evictions += o.Cache.Evictions
	s.Cache.BuildTime += o.Cache.BuildTime
	s.Cache.Entries += o.Cache.Entries
	s.Cache.Bytes += o.Cache.Bytes
	s.Cache.MaxBytes += o.Cache.MaxBytes
	s.Cache.SpillSkips += o.Cache.SpillSkips
	s.Cache.DiskCorrupt += o.Cache.DiskCorrupt
	s.Cache.Swept += o.Cache.Swept
	s.JobsDone += o.JobsDone
	s.JobsFailed += o.JobsFailed
	s.Factorizations += o.Factorizations
	s.FactorHits += o.FactorHits
	s.Assemblies += o.Assemblies
	s.AssemblyHits += o.AssemblyHits
	s.IterativeSolves += o.IterativeSolves
	s.WarmStarts += o.WarmStarts
	s.WarmFallbacks += o.WarmFallbacks
	s.Iterations += o.Iterations
	s.PrecondBuilds += o.PrecondBuilds
	s.PrecondHits += o.PrecondHits
	s.Refinements += o.Refinements
	s.PrecisionFallbacks += o.PrecisionFallbacks
	for k, n := range o.OrderingCounts {
		if s.OrderingCounts == nil {
			s.OrderingCounts = make(map[string]int64)
		}
		s.OrderingCounts[k] += n
	}
	for k, n := range o.PrecisionCounts {
		if s.PrecisionCounts == nil {
			s.PrecisionCounts = make(map[string]int64)
		}
		s.PrecisionCounts[k] += n
	}
}

// Solver is the batch-solve surface shared by Engine and the sharded
// router: the HTTP serving layer and the async job queue are written
// against it, so one process can serve from a single engine or from N
// lattice-sharded engines without the front end knowing.
type Solver interface {
	Solve(Job) (*JobResult, error)
	BatchSolve([]Job) *BatchResult
	Stats() EngineStats
}

// Engine is a concurrent batch-solve front end over the ROM machinery: it
// schedules scenario jobs on a bounded worker pool, shares cached ROMs so
// each distinct unit cell pays the one-shot local stage once (even under
// concurrent submission, via singleflight), assembles the reduced global
// matrix once per lattice (shared by every solver kind, with the
// preconditioners of iterative solves cached on the same snapshot — built
// at most once per lattice and kind), shares sparse Cholesky
// factorizations across repeated Direct solves, and warm-starts
// iterative solves from the latest solution on the same lattice. The
// Workers bound holds across every entry point: concurrent Solve calls and
// overlapping BatchSolve calls together never run more than Workers jobs at
// once. An Engine is safe for concurrent use; create one and reuse it.
type Engine struct {
	opt        EngineOptions
	cache      *romcache.Cache
	factors    *factorCache
	assemblies *memo[*array.Assembly]
	seeds      *seedCache
	// sem is the engine-wide job bound: every solve holds one slot, so
	// Solve and BatchSolve share the same Workers budget.
	sem chan struct{}

	jobsDone, jobsFailed                       atomic.Int64
	iterativeSolves, warmStarts, warmFallbacks atomic.Int64
	iterations                                 atomic.Int64
	precondBuilds, precondHits                 atomic.Int64
	orderingCounts                             [solver.NumOrderings]atomic.Int64
	precisionCounts                            [solver.NumPrecisions]atomic.Int64
	refinements, precisionFallbacks            atomic.Int64
}

// NewEngine creates an engine. A zero EngineOptions is valid.
func NewEngine(opt EngineOptions) *Engine {
	if opt.Workers <= 0 {
		// solver.DefaultWorkers is GOMAXPROCS unless host-profile tuning
		// installed a measured ceiling at startup (internal/solver/tuning).
		opt.Workers = solver.DefaultWorkers()
	}
	if opt.MaxFactors <= 0 {
		opt.MaxFactors = 16
	}
	if opt.MaxAssemblies <= 0 {
		opt.MaxAssemblies = 16
	}
	cache := opt.SharedCache
	if cache == nil {
		cache = romcache.New(romcache.Options{
			MaxBytes:   opt.CacheBytes,
			MaxEntries: opt.CacheEntries,
			Dir:        opt.CacheDir,
			Workers:    opt.BuildWorkers,
		})
	}
	return &Engine{
		opt:   opt,
		cache: cache,
		factors: &factorCache{memo: memo[*solver.CholFactor]{
			max: opt.MaxFactors, maxBytes: opt.FactorBytes,
			size: (*solver.CholFactor).MemoryBytes,
		}},
		assemblies: &memo[*array.Assembly]{
			max: opt.MaxAssemblies, maxBytes: opt.AssemblyBytes,
			size: (*array.Assembly).MemoryBytes,
		},
		seeds: &seedCache{max: 64},
		sem:   make(chan struct{}, opt.Workers),
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() EngineStats {
	orderings := make(map[string]int64)
	for k := range e.orderingCounts {
		if n := e.orderingCounts[k].Load(); n > 0 {
			orderings[solver.OrderingKind(k).String()] = n
		}
	}
	precisions := make(map[string]int64)
	for k := range e.precisionCounts {
		if n := e.precisionCounts[k].Load(); n > 0 {
			precisions[solver.Precision(k).String()] = n
		}
	}
	return EngineStats{
		OrderingCounts:     orderings,
		PrecisionCounts:    precisions,
		Cache:              e.cache.Stats(),
		JobsDone:           e.jobsDone.Load(),
		JobsFailed:         e.jobsFailed.Load(),
		Factorizations:     e.factors.built.Load(),
		FactorHits:         e.factors.hits.Load(),
		Assemblies:         e.assemblies.built.Load(),
		AssemblyHits:       e.assemblies.hits.Load(),
		IterativeSolves:    e.iterativeSolves.Load(),
		WarmStarts:         e.warmStarts.Load(),
		WarmFallbacks:      e.warmFallbacks.Load(),
		Iterations:         e.iterations.Load(),
		PrecondBuilds:      e.precondBuilds.Load(),
		PrecondHits:        e.precondHits.Load(),
		Refinements:        e.refinements.Load(),
		PrecisionFallbacks: e.precisionFallbacks.Load(),
	}
}

// Solve runs a single job through the engine (cache-aware, factor-sharing,
// warm-starting). The returned JobResult always carries the outcome; the
// error mirrors JobResult.Err for convenience.
func (e *Engine) Solve(job Job) (*JobResult, error) {
	res := e.solve(job, 0, solver.DefaultWorkers())
	return res, res.Err
}

// solve computes the job's lattice key and delegates; BatchSolve threads
// the keys it already computed for chain planning instead.
func (e *Engine) solve(job Job, index, workers int) *JobResult {
	return e.solveKeyed(job, index, workers, LatticeKey(job))
}

// BatchSolve runs every job on a pool of at most EngineOptions.Workers
// goroutines and returns per-job results in input order plus aggregate
// stats. Jobs with the same unit-cell configuration share one ROM (the
// local stage runs once per distinct configuration no matter how the jobs
// interleave), jobs on the same lattice share one reduced-global assembly,
// and uniform-ΔT iterative jobs on the same lattice are chained in ΔT order
// so each solve warm-starts from its neighbor's solution.
//
//stressvet:gang -- batch worker pool, capped at min(opt.Workers, number of chains)
func (e *Engine) BatchSolve(jobs []Job) *BatchResult {
	start := time.Now()
	out := &BatchResult{Results: make([]JobResult, len(jobs))}
	chains, keys := e.planChains(jobs)
	workers := e.opt.Workers
	if workers > len(chains) {
		workers = len(chains)
	}
	if workers < 1 {
		workers = 1
	}
	// Split the machine between concurrent chains so a batch does not
	// oversubscribe: each job's inner stages (mat-vecs, sampling) get an
	// equal share of GOMAXPROCS.
	inner := runtime.GOMAXPROCS(0) / workers
	if inner < 1 {
		inner = 1
	}

	next := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chain := range next {
				for _, i := range chain {
					out.Results[i] = *e.solveKeyed(jobs[i], i, inner, keys[i])
				}
			}
		}()
	}
	for _, chain := range chains {
		next <- chain
	}
	close(next)
	wg.Wait()

	s := &out.Stats
	s.Jobs = len(jobs)
	s.Wall = time.Since(start)
	for i := range out.Results {
		r := &out.Results[i]
		s.LocalTime += r.LocalWait
		if r.Err != nil {
			s.Errors++
			continue
		}
		if r.CacheHit {
			s.CacheHits++
		} else {
			s.CacheMisses++
		}
		s.GlobalTime += r.Result.GlobalTime
		s.Iterations += int64(r.Result.Stats.Iterations)
		if r.Result.Stats.Warm {
			s.WarmStarts++
		}
	}
	return out
}

// planChains partitions the job indices into execution chains: uniform-ΔT
// iterative jobs on the same lattice form one chain sorted by ΔT (they run
// sequentially so each solve can warm-start from its neighbor — consecutive
// ΔT scenarios differ by a smooth parameter, making the previous solution
// an excellent seed); everything else is a singleton chain. The per-job
// lattice keys are returned so the solve path does not re-hash the specs.
func (e *Engine) planChains(jobs []Job) (chains [][]int, keys []string) {
	chains = make([][]int, 0, len(jobs))
	keys = make([]string, len(jobs))
	grouped := make(map[string][]int)
	var order []string // deterministic chain emission order
	for i, job := range jobs {
		key := LatticeKey(job)
		keys[i] = key
		if e.opt.DisableWarmStart || key == "" || job.Solver == SolveDirect || job.DeltaTMap != nil {
			chains = append(chains, []int{i})
			continue
		}
		if _, seen := grouped[key]; !seen {
			order = append(order, key)
		}
		grouped[key] = append(grouped[key], i)
	}
	for _, key := range order {
		idxs := grouped[key]
		sort.SliceStable(idxs, func(a, b int) bool { return jobs[idxs[a]].DeltaT < jobs[idxs[b]].DeltaT })
		chains = append(chains, idxs)
	}
	return chains, keys
}

// engineBC is the boundary condition of every engine job (globalProblem
// builds the Problem with it); the cache keys bake it in so a future second
// BC kind cannot silently collide.
const engineBC = array.ClampedTopBottom

// LatticeKey identifies the job's reduced global system: ROM content (the
// SHA-256 of the unit-cell spec), array dimensions, and BC pattern —
// everything the matrix depends on and nothing it does not (the thermal
// load). It is the key of every lattice-affine cache in the engine
// (assembly, preconditioner, factor, warm-start seed), and therefore also
// the routing key of the shard router: requests with equal LatticeKeys must
// land on the same replica for those caches to stay hot. Empty when the
// spec cannot be hashed.
func LatticeKey(job Job) string {
	key, err := romcache.Key(job.Config.romSpec(true))
	if err != nil {
		return ""
	}
	return fmt.Sprintf("%s|%dx%d|bc%d", key, job.Cols, job.Rows, engineBC)
}

func (e *Engine) solveKeyed(job Job, index, workers int, key string) *JobResult {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	if job.Config.Workers > 0 {
		workers = job.Config.Workers
	}
	res := &JobResult{Index: index}
	start := time.Now()
	defer func() {
		res.Total = time.Since(start)
		if res.Err != nil {
			e.jobsFailed.Add(1)
		} else {
			e.jobsDone.Add(1)
		}
	}()

	if job.Rows < 1 || job.Cols < 1 {
		res.Err = fmt.Errorf("morestress: job array size must be positive, got %d×%d", job.Rows, job.Cols)
		return res
	}
	spec := job.Config.romSpec(true)
	r, hit, err := e.cache.Get(spec)
	res.LocalWait = time.Since(start)
	if err != nil {
		res.Err = fmt.Errorf("morestress: job local stage: %w", err)
		return res
	}
	res.CacheHit = hit

	kind := array.GMRES
	switch job.Solver {
	case SolveCG:
		kind = array.CG
	case SolveDirect:
		kind = array.Direct
	}
	prob := globalProblem(r, job.Rows, job.Cols, job.DeltaT, job.DeltaTMap, kind, job.Options, workers)
	if key != "" {
		// Assemble-once: the reduced global system depends on the ROM
		// content, the array dimensions, and the BC pattern — not on ΔT —
		// so every scenario on the lattice shares one assembly.
		asm, aerr := e.assemblies.getOrBuild(key, func() (*array.Assembly, error) {
			return array.NewAssembly(prob, workers)
		})
		if aerr != nil {
			res.Err = fmt.Errorf("morestress: job global assembly: %w", aerr)
			return res
		}
		prob.Assembly = asm
		if kind == array.Direct {
			prob.Factors = e.factors
			prob.FactorKey = key
		}
		if kind != array.Direct && !e.opt.DisableWarmStart && job.DeltaTMap == nil {
			prob.X0 = e.seeds.get(key, job.DeltaT)
		}
	}
	ar, err := solveGlobal(prob, job.GridSamples)
	if err != nil {
		res.Err = fmt.Errorf("morestress: job global stage: %w", err)
		return res
	}
	sol := ar.Solution
	// Count only solves that actually ran an iterative solver: Direct jobs
	// and degenerate all-constrained lattices (no free DoFs, QFree empty)
	// would otherwise skew the warm-start hit rate.
	if kind != array.Direct && len(sol.QFree) > 0 {
		e.iterativeSolves.Add(1)
		e.iterations.Add(int64(sol.Stats.Iterations))
		if sol.Stats.Warm {
			e.warmStarts.Add(1)
		}
		if sol.WarmFallback {
			e.warmFallbacks.Add(1)
		}
		if sol.PrecondShared {
			e.precondHits.Add(1)
		} else {
			e.precondBuilds.Add(1)
		}
		if o := sol.Ordering; o >= 0 && int(o) < len(e.orderingCounts) {
			e.orderingCounts[o].Add(1)
		}
		if pr := sol.Precision; pr >= 0 && int(pr) < len(e.precisionCounts) {
			e.precisionCounts[pr].Add(1)
		}
		e.refinements.Add(int64(sol.Stats.Refinements))
		if sol.PrecisionFallback {
			e.precisionFallbacks.Add(1)
		}
	}
	if key != "" && !e.opt.DisableWarmStart && job.DeltaTMap == nil && len(sol.QFree) > 0 {
		e.seeds.put(key, job.DeltaT, sol.QFree)
	}
	res.Result = ar
	return res
}

// memo is a keyed build-once cache with singleflight deduplication, an
// entry-count bound, and an optional byte budget over size(value). When over
// either budget, arbitrary entries other than the newest are dropped (the
// cached artifacts are cheap to rebuild relative to holding unbounded
// memory). The zero sizes are never counted; size must not be nil.
type memo[T any] struct {
	flight   romcache.Group[T]
	max      int
	maxBytes int64
	size     func(T) int64

	mu sync.Mutex
	// guarded by mu
	m     map[string]T
	bytes int64 // guarded by mu

	built, hits atomic.Int64
}

func (c *memo[T]) getOrBuild(key string, build func() (T, error)) (T, error) {
	if v, ok := c.lookup(key); ok {
		c.hits.Add(1)
		return v, nil
	}
	v, err, shared := c.flight.Do(key, func() (T, error) {
		if v, ok := c.lookup(key); ok {
			return v, nil
		}
		v, err := build()
		if err != nil {
			return v, err
		}
		c.built.Add(1)
		c.insert(key, v)
		return v, nil
	})
	if err != nil {
		var zero T
		return zero, err
	}
	if shared {
		c.hits.Add(1)
	}
	return v, nil
}

func (c *memo[T]) lookup(key string) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *memo[T]) insert(key string, v T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]T)
	}
	c.m[key] = v
	// Re-sum the byte footprint from scratch: cached values can grow after
	// insertion (an Assembly lazily caches preconditioners), so incremental
	// accounting would drift. Entry counts are small (c.max, default 16).
	c.bytes = 0
	for _, e := range c.m {
		c.bytes += c.size(e)
	}
	// Drop arbitrary other entries until both budgets hold; the entry just
	// inserted always stays (it is about to be used).
	for k, old := range c.m {
		if len(c.m) <= c.max && (c.maxBytes <= 0 || c.bytes <= c.maxBytes) {
			break
		}
		if k == key {
			continue
		}
		delete(c.m, k)
		c.bytes -= c.size(old)
	}
}

// factorCache memoizes sparse Cholesky factorizations for Direct solves; it
// adapts the generic memo to the array.FactorCache interface.
type factorCache struct {
	memo[*solver.CholFactor]
}

// GetOrFactor implements array.FactorCache.
func (f *factorCache) GetOrFactor(key string, build func() (*solver.CholFactor, error)) (*solver.CholFactor, error) {
	return f.getOrBuild(key, build)
}

// seedCache holds the most recent reduced solution per lattice key for
// warm-starting. Entries record the uniform ΔT they were solved at so a
// seed can be rescaled to the target load: for a uniform thermal field the
// reduced RHS — and therefore the solution — is linear in ΔT, so the scaled
// seed of a converged neighbor is already at the solver's tolerance and a
// sweep effectively pays one cold solve per lattice.
type seedCache struct {
	max int

	mu sync.Mutex
	m  map[string]seedEntry // guarded by mu
}

type seedEntry struct {
	qf []float64
	dt float64
}

// get returns a seed for solving the key's lattice at deltaT, nil when none
// is applicable. The returned slice is freshly scaled (or shared read-only
// when the loads match; solver entry points copy their x0 before iterating).
func (s *seedCache) get(key string, deltaT float64) []float64 {
	if deltaT == 0 {
		return nil // the zero-load solution is zero: a "seed" would be a cold start counted as warm
	}
	s.mu.Lock()
	e, ok := s.m[key]
	s.mu.Unlock()
	if !ok || e.dt == 0 || len(e.qf) == 0 {
		return nil
	}
	if deltaT == e.dt { //stressvet:allow floatcmp -- exact-match fast path; inexact ratios fall through to scaling
		return e.qf
	}
	scale := deltaT / e.dt
	out := make([]float64, len(e.qf))
	for i, v := range e.qf {
		out[i] = scale * v
	}
	return out
}

// put records the solution of a uniform-ΔT solve. The slice must not be
// mutated afterwards (Solution.QFree is freshly allocated per solve).
func (s *seedCache) put(key string, deltaT float64, qf []float64) {
	if deltaT == 0 {
		return // zero-load solution is all zeros: no better than a cold start
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]seedEntry)
	}
	_, existed := s.m[key]
	s.m[key] = seedEntry{qf: qf, dt: deltaT}
	if !existed {
		for k := range s.m {
			if len(s.m) <= s.max {
				break
			}
			if k == key {
				continue
			}
			delete(s.m, k)
		}
	}
}
