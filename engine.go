package morestress

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/romcache"
	"repro/internal/solver"
)

// SolverChoice selects the global-stage solver of a batch job.
type SolverChoice int

const (
	// SolveGMRES is the paper's recommendation (default).
	SolveGMRES SolverChoice = iota
	// SolveCG uses conjugate gradients on the SPD global matrix.
	SolveCG
	// SolveDirect factors the reduced global matrix with sparse Cholesky.
	// Under the Engine, repeated Direct jobs on the same unit cell, array
	// size, and boundary condition share one factorization, so batches of
	// load sweeps pay it once.
	SolveDirect
)

// Job describes one scenario for the batch engine: which unit cell (and
// therefore which ROM), the array dimensions, the thermal load, and the
// global solver. Jobs with equal unit-cell configurations share one ROM.
type Job struct {
	// Config is the unit-cell configuration; its ROM is obtained from the
	// engine cache (the local stage runs only on the first use).
	Config Config
	// Rows, Cols are the array dimensions in blocks.
	Rows, Cols int
	// DeltaT is the thermal load in °C.
	DeltaT float64
	// DeltaTMap optionally overrides DeltaT per block, indexed (row, col).
	DeltaTMap func(row, col int) float64
	// GridSamples is the per-block mid-plane sampling resolution
	// (0 disables field sampling).
	GridSamples int
	// Solver selects the global solver.
	Solver SolverChoice
	// Options tunes the iterative solvers.
	Options SolverOptions
}

// JobResult is the outcome of one batch job.
type JobResult struct {
	// Index is the job's position in the BatchSolve input.
	Index int
	// Err is the job's failure, nil on success. Failures are per-job: one
	// bad job does not abort the batch.
	Err error
	// Result is the solved array (nil when Err is set).
	Result *ArrayResult
	// CacheHit reports whether the job's ROM came from the cache (memory,
	// disk, or an in-flight build) instead of running the local stage.
	CacheHit bool
	// LocalWait is the time spent obtaining the ROM: the full local stage
	// on a cache miss, near zero on a hit.
	LocalWait time.Duration
	// Total is the job's wall time (ROM wait + global stage).
	Total time.Duration
}

// BatchStats aggregates a BatchSolve call.
type BatchStats struct {
	// Jobs is the number of jobs submitted; Errors counts failures.
	Jobs, Errors int
	// CacheHits/CacheMisses partition the jobs by ROM cache outcome.
	CacheHits, CacheMisses int
	// Wall is the batch wall time across the worker pool.
	Wall time.Duration
	// LocalTime and GlobalTime are the per-job times summed over the
	// batch (CPU-time-like; they exceed Wall under concurrency).
	LocalTime, GlobalTime time.Duration
}

// BatchResult is the outcome of a BatchSolve call.
type BatchResult struct {
	// Results holds one entry per job, in input order.
	Results []JobResult
	// Stats aggregates the batch.
	Stats BatchStats
}

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Workers bounds the number of concurrently solving jobs
	// (default GOMAXPROCS).
	Workers int
	// CacheBytes is the in-memory ROM cache byte budget: models are
	// admitted against the sum of their MemoryBytes, so one huge lattice
	// cannot evict a whole working set of small ones. When both CacheBytes
	// and CacheEntries are zero the budget defaults to
	// romcache.DefaultMaxBytes (2 GiB).
	CacheBytes int64
	// CacheEntries optionally caps the ROM cache by model count on top of
	// the byte budget (0 = no entry cap).
	CacheEntries int
	// CacheDir enables disk spill of built ROMs (empty disables).
	CacheDir string
	// BuildWorkers is the local-stage parallelism of cache-miss builds
	// (default GOMAXPROCS).
	BuildWorkers int
	// MaxFactors bounds the shared Cholesky factorization cache used by
	// SolveDirect jobs by entry count (default 16).
	MaxFactors int
	// FactorBytes additionally bounds the factorization cache by the sum
	// of the factors' MemoryBytes (0 = entry-count bound only).
	FactorBytes int64
}

// EngineStats is a snapshot of an engine's lifetime counters.
type EngineStats struct {
	// Cache reports the ROM cache.
	Cache romcache.Stats
	// JobsDone and JobsFailed count completed jobs since engine creation.
	JobsDone, JobsFailed int64
	// Factorizations counts Cholesky factorizations performed for
	// SolveDirect jobs; FactorHits counts Direct solves that reused one.
	Factorizations, FactorHits int64
}

// Engine is a concurrent batch-solve front end over the ROM machinery: it
// schedules scenario jobs on a bounded worker pool, shares cached ROMs so
// each distinct unit cell pays the one-shot local stage once (even under
// concurrent submission, via singleflight), and shares sparse Cholesky
// factorizations across repeated Direct solves of the same lattice. The
// Workers bound holds across every entry point: concurrent Solve calls and
// overlapping BatchSolve calls together never run more than Workers jobs at
// once. An Engine is safe for concurrent use; create one and reuse it.
type Engine struct {
	opt     EngineOptions
	cache   *romcache.Cache
	factors *factorCache
	// sem is the engine-wide job bound: every solve holds one slot, so
	// Solve and BatchSolve share the same Workers budget.
	sem chan struct{}

	jobsDone, jobsFailed atomic.Int64
}

// NewEngine creates an engine. A zero EngineOptions is valid.
func NewEngine(opt EngineOptions) *Engine {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.MaxFactors <= 0 {
		opt.MaxFactors = 16
	}
	return &Engine{
		opt: opt,
		cache: romcache.New(romcache.Options{
			MaxBytes:   opt.CacheBytes,
			MaxEntries: opt.CacheEntries,
			Dir:        opt.CacheDir,
			Workers:    opt.BuildWorkers,
		}),
		factors: &factorCache{max: opt.MaxFactors, maxBytes: opt.FactorBytes},
		sem:     make(chan struct{}, opt.Workers),
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Cache:          e.cache.Stats(),
		JobsDone:       e.jobsDone.Load(),
		JobsFailed:     e.jobsFailed.Load(),
		Factorizations: e.factors.factored.Load(),
		FactorHits:     e.factors.hits.Load(),
	}
}

// Solve runs a single job through the engine (cache-aware, factor-sharing).
// The returned JobResult always carries the outcome; the error mirrors
// JobResult.Err for convenience.
func (e *Engine) Solve(job Job) (*JobResult, error) {
	res := e.solve(job, 0, runtime.GOMAXPROCS(0))
	return res, res.Err
}

// BatchSolve runs every job on a pool of at most EngineOptions.Workers
// goroutines and returns per-job results in input order plus aggregate
// stats. Jobs with the same unit-cell configuration share one ROM; the
// local stage runs once per distinct configuration no matter how the jobs
// interleave.
func (e *Engine) BatchSolve(jobs []Job) *BatchResult {
	start := time.Now()
	out := &BatchResult{Results: make([]JobResult, len(jobs))}
	workers := e.opt.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	// Split the machine between concurrent jobs so a batch does not
	// oversubscribe: each job's inner stages (mat-vecs, sampling) get an
	// equal share of GOMAXPROCS.
	inner := runtime.GOMAXPROCS(0) / workers
	if inner < 1 {
		inner = 1
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out.Results[i] = *e.solve(jobs[i], i, inner)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	s := &out.Stats
	s.Jobs = len(jobs)
	s.Wall = time.Since(start)
	for i := range out.Results {
		r := &out.Results[i]
		s.LocalTime += r.LocalWait
		if r.Err != nil {
			s.Errors++
			continue
		}
		if r.CacheHit {
			s.CacheHits++
		} else {
			s.CacheMisses++
		}
		s.GlobalTime += r.Result.GlobalTime
	}
	return out
}

func (e *Engine) solve(job Job, index, workers int) *JobResult {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	if job.Config.Workers > 0 {
		workers = job.Config.Workers
	}
	res := &JobResult{Index: index}
	start := time.Now()
	defer func() {
		res.Total = time.Since(start)
		if res.Err != nil {
			e.jobsFailed.Add(1)
		} else {
			e.jobsDone.Add(1)
		}
	}()

	if job.Rows < 1 || job.Cols < 1 {
		res.Err = fmt.Errorf("morestress: job array size must be positive, got %d×%d", job.Rows, job.Cols)
		return res
	}
	spec := job.Config.romSpec(true)
	r, hit, err := e.cache.Get(spec)
	res.LocalWait = time.Since(start)
	if err != nil {
		res.Err = fmt.Errorf("morestress: job local stage: %w", err)
		return res
	}
	res.CacheHit = hit

	kind := array.GMRES
	switch job.Solver {
	case SolveCG:
		kind = array.CG
	case SolveDirect:
		kind = array.Direct
	}
	prob := globalProblem(r, job.Rows, job.Cols, job.DeltaT, job.DeltaTMap, kind, job.Options, workers)
	if kind == array.Direct {
		// The reduced matrix depends on the ROM content, the array
		// dimensions, and the BC pattern — not on ΔT — so key on exactly
		// those and let load sweeps share the factorization.
		if key, kerr := romcache.Key(spec); kerr == nil {
			prob.Factors = e.factors
			prob.FactorKey = fmt.Sprintf("%s|%dx%d|bc%d", key, job.Cols, job.Rows, prob.BC)
		}
	}
	ar, err := solveGlobal(prob, job.GridSamples)
	if err != nil {
		res.Err = fmt.Errorf("morestress: job global stage: %w", err)
		return res
	}
	res.Result = ar
	return res
}

// factorCache memoizes sparse Cholesky factorizations for Direct solves,
// with singleflight deduplication so concurrent jobs on the same lattice
// factor once. The cache holds at most max entries and, when maxBytes is
// set, at most that many bytes of factors (each factor's MemoryBytes); when
// over either budget, arbitrary entries are dropped (factorizations are
// cheap to redo relative to holding unbounded memory).
type factorCache struct {
	flight   romcache.Group[*solver.CholFactor]
	max      int
	maxBytes int64

	mu    sync.Mutex
	m     map[string]*solver.CholFactor
	bytes int64

	factored, hits atomic.Int64
}

// GetOrFactor implements array.FactorCache.
func (f *factorCache) GetOrFactor(key string, build func() (*solver.CholFactor, error)) (*solver.CholFactor, error) {
	if c := f.lookup(key); c != nil {
		f.hits.Add(1)
		return c, nil
	}
	c, err, shared := f.flight.Do(key, func() (*solver.CholFactor, error) {
		if c := f.lookup(key); c != nil {
			return c, nil
		}
		c, err := build()
		if err != nil {
			return nil, err
		}
		f.factored.Add(1)
		f.insert(key, c)
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		f.hits.Add(1)
	}
	return c, nil
}

func (f *factorCache) lookup(key string) *solver.CholFactor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m[key]
}

func (f *factorCache) insert(key string, c *solver.CholFactor) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.m == nil {
		f.m = make(map[string]*solver.CholFactor)
	}
	if old, ok := f.m[key]; ok {
		f.bytes -= old.MemoryBytes()
	}
	f.m[key] = c
	f.bytes += c.MemoryBytes()
	// Drop arbitrary other entries until both budgets hold; the entry just
	// inserted always stays (it is about to be used).
	for k, v := range f.m {
		if len(f.m) <= f.max && (f.maxBytes <= 0 || f.bytes <= f.maxBytes) {
			break
		}
		if k == key {
			continue
		}
		delete(f.m, k)
		f.bytes -= v.MemoryBytes()
	}
}
