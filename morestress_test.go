package morestress

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mesh"
)

// testConfig returns a cheap configuration for unit tests.
func testConfig(pitch float64) Config {
	cfg := DefaultConfig(pitch)
	cfg.Resolution = mesh.CoarseResolution()
	cfg.Nodes = [3]int{4, 4, 4}
	return cfg
}

func TestBuildModelAndSolveArray(t *testing.T) {
	m, err := BuildModel(testConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	if m.ElementDoFs() != 168 {
		t.Errorf("element DoFs %d, want 168", m.ElementDoFs())
	}
	res, err := m.SolveArray(ArraySpec{
		Rows: 2, Cols: 3, DeltaT: -250, GridSamples: 10,
		Options: SolverOptions{Tol: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Error("global solve did not converge")
	}
	if res.VM.NX != 30 || res.VM.NY != 20 {
		t.Errorf("field shape %d×%d", res.VM.NX, res.VM.NY)
	}
	if res.VM.Max() <= 0 {
		t.Error("expected positive von Mises stress")
	}
	if res.GlobalTime <= 0 {
		t.Error("missing timing")
	}
}

func TestSolveArrayNoSampling(t *testing.T) {
	m, err := BuildModel(testConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveArray(ArraySpec{Rows: 1, Cols: 1, DeltaT: -100})
	if err != nil {
		t.Fatal(err)
	}
	if res.VM != nil {
		t.Error("expected nil field when GridSamples is 0")
	}
}

func TestSolveArrayCGMatchesGMRES(t *testing.T) {
	m, err := BuildModel(testConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	spec := ArraySpec{Rows: 2, Cols: 2, DeltaT: -250, GridSamples: 8,
		Options: SolverOptions{Tol: 1e-11}}
	a, err := m.SolveArray(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.UseCG = true
	b, err := m.SolveArray(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := MAE(a.VM, b.VM); d > 1e-6*a.VM.Max() {
		t.Errorf("CG and GMRES fields differ: MAE %g", d)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, err := BuildModelWithDummy(testConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Dummy == nil {
		t.Fatal("dummy ROM lost in round trip")
	}
	if m2.Config.Nodes != m.Config.Nodes || m2.Config.Geometry != m.Config.Geometry {
		t.Error("config not restored")
	}
	r1, err := m.SolveArray(ArraySpec{Rows: 1, Cols: 2, DeltaT: -250, GridSamples: 6,
		Options: SolverOptions{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.SolveArray(ArraySpec{Rows: 1, Cols: 2, DeltaT: -250, GridSamples: 6,
		Options: SolverOptions{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	if d := MAE(r1.VM, r2.VM); d > 1e-9*r1.VM.Max() {
		t.Errorf("loaded model gives different result: MAE %g", d)
	}
}

func TestReferenceArrayAgreesWithROM(t *testing.T) {
	cfg := testConfig(15)
	m, err := BuildModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SolveArray(ArraySpec{Rows: 2, Cols: 2, DeltaT: -250, GridSamples: 10,
		Options: SolverOptions{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceArray(cfg, 2, 2, -250, 10, SolverOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	nmae := NormalizedMAE(got.VM, ref.VM)
	t.Logf("facade end-to-end error: %.3f%%", 100*nmae)
	if nmae > 0.06 {
		t.Errorf("error %.4f too large", nmae)
	}
}

// TestScenario2EndToEnd runs the full sub-modeling pipeline at test scale:
// coarse package solve → embedded ROM solve at two contrasting locations →
// comparison against the fine reference under identical boundary
// conditions, plus the superposition baseline, reproducing the Table 2
// relationships.
func TestScenario2EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario 2 pipeline is slow")
	}
	cfg := testConfig(15)
	cfg.Nodes = [3]int{5, 5, 5}
	m, err := BuildModelWithDummy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkgRes := PackageResolution{Lateral: 12, SubZ: 2, IntZ: 1, DieZ: 1}
	pkg, err := SolvePackage(DefaultPackage(), pkgRes, -250, SolverOptions{Tol: 1e-8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := BuildSuperposition(cfg, 1, 8, SolverOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}

	for _, loc := range []Location{Loc1, Loc5} {
		spec := EmbeddedSpec{
			Rows: 3, Cols: 3, DummyRing: 1, Location: loc,
			GridSamples: 8, Options: SolverOptions{Tol: 1e-9},
		}
		got, err := m.SolveEmbedded(pkg, spec)
		if err != nil {
			t.Fatalf("%v: %v", loc, err)
		}
		ref, err := ReferenceEmbedded(cfg, pkg, spec, 8, SolverOptions{Tol: 1e-9})
		if err != nil {
			t.Fatalf("%v: %v", loc, err)
		}
		romErr := NormalizedMAE(got.VM, ref.VM)

		supVM, err := sup.EstimateEmbedded(pkg, spec)
		if err != nil {
			t.Fatalf("%v: %v", loc, err)
		}
		supErr := NormalizedMAE(supVM, ref.VM)
		t.Logf("%v: MORE-Stress %.3f%%, superposition %.3f%%", loc, 100*romErr, 100*supErr)

		if romErr > 0.05 {
			t.Errorf("%v: MORE-Stress error %.4f too large", loc, romErr)
		}
		if supErr <= romErr {
			t.Errorf("%v: superposition (%.4f) should be worse than MORE-Stress (%.4f)", loc, supErr, romErr)
		}
	}
}

func TestEmbeddedValidation(t *testing.T) {
	cfg := testConfig(15)
	m, err := BuildModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &CoarsePackage{}
	if _, err := m.SolveEmbedded(pkg, EmbeddedSpec{Rows: 0, Cols: 1}); err == nil {
		t.Error("expected error for empty array")
	}
}

func TestEmbeddedSpecGeometry(t *testing.T) {
	s := EmbeddedSpec{Rows: 15, Cols: 15, DummyRing: 2}
	if s.Width(15) != 19*15 {
		t.Errorf("width %g", s.Width(15))
	}
	if !s.IsDummy(0, 0) || !s.IsDummy(18, 18) || !s.IsDummy(1, 9) {
		t.Error("ring blocks should be dummies")
	}
	if s.IsDummy(2, 2) || s.IsDummy(16, 16) || s.IsDummy(9, 9) {
		t.Error("array blocks should not be dummies")
	}
}

func TestPaperGeometryFacade(t *testing.T) {
	g := PaperGeometry(10)
	if g.Pitch != 10 || g.Height != 50 || g.Diameter != 5 || g.Liner != 0.5 {
		t.Errorf("paper geometry: %+v", g)
	}
	if math.Abs(DefaultMaterials().Via.E-111.5e3) > 1 {
		t.Error("default materials wrong")
	}
}
