package morestress

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/mesh"
)

func TestStructurePillarThroughFacade(t *testing.T) {
	cfg := testConfig(15)
	cfg.Structure = StructurePillar
	cfg.Geometry.Liner = 0
	m, err := BuildModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveArray(ArraySpec{Rows: 2, Cols: 2, DeltaT: -250, GridSamples: 8,
		Options: SolverOptions{Tol: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceArray(cfg, 2, 2, -250, 8, SolverOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	nmae := NormalizedMAE(res.VM, ref.VM)
	t.Logf("pillar structure error: %.3f%%", 100*nmae)
	if nmae > 0.06 {
		t.Errorf("pillar error %.4f too large", nmae)
	}
}

func TestStructureRoundTripsThroughSave(t *testing.T) {
	cfg := testConfig(15)
	cfg.Structure = StructurePillar
	cfg.Geometry.Liner = 0
	m, err := BuildModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Config.Structure != StructurePillar {
		t.Errorf("structure lost in round trip: %v", m2.Config.Structure)
	}
}

func TestDeltaTMapChangesResult(t *testing.T) {
	m, err := BuildModel(testConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	uni, err := m.SolveArray(ArraySpec{Rows: 2, Cols: 2, DeltaT: -250, GridSamples: 6,
		Options: SolverOptions{Tol: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := m.SolveArray(ArraySpec{
		Rows: 2, Cols: 2, DeltaT: -250,
		DeltaTMap: func(row, col int) float64 {
			if row == 0 && col == 0 {
				return -100
			}
			return -250
		},
		GridSamples: 6, Options: SolverOptions{Tol: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if MAE(uni.VM, hot.VM) < 1 {
		t.Error("DeltaTMap had no visible effect")
	}
}

func TestArrayResultStressProbes(t *testing.T) {
	m, err := BuildModel(testConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveArray(ArraySpec{Rows: 1, Cols: 1, DeltaT: -250, GridSamples: 8,
		Options: SolverOptions{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	p := Vec3{X: 7.5, Y: 7.5, Z: 25} // via center, mid height
	s := res.StressAt(p)
	vm := VonMises(s)
	if vm <= 0 || math.IsNaN(vm) {
		t.Fatalf("invalid stress at via center: %v", s)
	}
	pr := PrincipalStresses(s)
	if !(pr[0] >= pr[1] && pr[1] >= pr[2]) {
		t.Errorf("principal stresses unsorted: %v", pr)
	}
	if tr := Tresca(s); tr < vm-1e-9 && vm/tr > 1+1e-9 {
		t.Errorf("Tresca %g inconsistent with vM %g", tr, vm)
	}
	// Sampled field and pointwise probe agree at a sample site.
	gs := 8
	pitch := m.Config.Geometry.Pitch
	x := (float64(3) + 0.5) * pitch / float64(gs)
	y := (float64(4) + 0.5) * pitch / float64(gs)
	want := res.VM.At(3, 4)
	got := VonMises(res.StressAt(Vec3{X: x, Y: y, Z: 25}))
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("probe %g vs field %g", got, want)
	}
	d := res.DisplacementAt(Vec3{X: 7.5, Y: 7.5, Z: 50})
	for c := 0; c < 3; c++ {
		if d[c] != 0 {
			t.Errorf("clamped top moved: %v", d)
		}
	}
}

func TestFieldExportFacade(t *testing.T) {
	m, err := BuildModel(testConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveArray(ArraySpec{Rows: 1, Cols: 1, DeltaT: -250, GridSamples: 6,
		Options: SolverOptions{Tol: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	var csv, vtk bytes.Buffer
	if err := res.VM.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.VM.WriteVTK(&vtk, "vm", 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vtk.String(), "DIMENSIONS 6 6 1") {
		t.Error("VTK header wrong")
	}
	if len(strings.Split(strings.TrimSpace(csv.String()), "\n")) != 6 {
		t.Error("CSV row count wrong")
	}
	if res.VM.RenderASCII(12) == "" {
		t.Error("empty ASCII render")
	}
}

func TestSuperpositionSaveLoadFacade(t *testing.T) {
	cfg := testConfig(15)
	s, err := BuildSuperposition(cfg, 1, 6, SolverOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveKernel(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSuperposition(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	a := s.EstimateArray(2, 2, -250)
	b := s2.EstimateArray(2, 2, -250)
	if MAE(a, b) != 0 {
		t.Error("kernel round trip changed the estimate")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig(15)
	if cfg.Structure != StructureTSV {
		t.Error("default structure should be TSV")
	}
	if cfg.Nodes != [3]int{5, 5, 5} {
		t.Errorf("default nodes %v", cfg.Nodes)
	}
	if cfg.Resolution != mesh.DefaultResolution() {
		t.Error("default resolution mismatch")
	}
}

// TestQuadraticPipelineClosesDiscretizationGap is the fidelity headline: a
// quadratic local stage measured against the quadratic (SOLID186-class)
// reference must return to the sub-percent regime that the trilinear
// pipeline achieves against the trilinear reference — i.e., the ROM error
// is interpolation-dominated regardless of the element order.
func TestQuadraticPipelineClosesDiscretizationGap(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic pipeline comparison is slow")
	}
	cfg := testConfig(15)
	cfg.Nodes = [3]int{5, 5, 5}
	cfg.Quadratic = true
	m, err := BuildModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveArray(ArraySpec{Rows: 2, Cols: 2, DeltaT: -250, GridSamples: 10,
		Options: SolverOptions{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceArrayQuadratic(cfg, 2, 2, -250, 10, SolverOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	nmae := NormalizedMAE(res.VM, ref.VM)
	t.Logf("quadratic ROM vs quadratic reference: %.3f%%", 100*nmae)
	if nmae > 0.02 {
		t.Errorf("quadratic pipeline error %.4f too large", nmae)
	}
}
