package morestress

import "testing"

// BenchmarkBatchEngine measures a warm-cache batch of 8 identical-spec
// scenarios: after the first build, every job must skip the local stage
// (the benchmark fails if any warm job re-runs it), so the timing is pure
// global stage + scheduling overhead.
func BenchmarkBatchEngine(b *testing.B) {
	e := NewEngine(EngineOptions{Workers: 4})
	cfg := testConfig(15)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Rows: 3, Cols: 3, DeltaT: -250 + 5*float64(i)}
	}
	if _, err := e.Solve(jobs[0]); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := e.BatchSolve(jobs)
		if br.Stats.Errors != 0 {
			b.Fatalf("batch errors: %+v", br.Stats)
		}
		if br.Stats.CacheMisses != 0 {
			b.Fatalf("warm batch re-ran the local stage %d times", br.Stats.CacheMisses)
		}
	}
	b.StopTimer()
	s := e.Stats()
	b.ReportMetric(float64(s.Cache.Hits)/float64(s.Cache.Hits+s.Cache.Misses), "hit-rate")
}

// BenchmarkBatchEngineColdBuild is the contrast case: each iteration uses a
// fresh engine, so the batch pays one full local stage before the 7 hits.
// Comparing against BenchmarkBatchEngine isolates the cache-hit speedup.
func BenchmarkBatchEngineColdBuild(b *testing.B) {
	cfg := testConfig(15)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Rows: 3, Cols: 3, DeltaT: -250 + 5*float64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(EngineOptions{Workers: 4})
		br := e.BatchSolve(jobs)
		if br.Stats.Errors != 0 || br.Stats.CacheMisses != 1 {
			b.Fatalf("cold batch stats: %+v", br.Stats)
		}
	}
}

// BenchmarkEngineDirectSweep measures a ΔT sweep under the Direct solver,
// where the engine shares one Cholesky factorization across the batch.
func BenchmarkEngineDirectSweep(b *testing.B) {
	e := NewEngine(EngineOptions{Workers: 4})
	cfg := testConfig(15)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Rows: 3, Cols: 3, DeltaT: -30 * float64(i+1), Solver: SolveDirect}
	}
	if _, err := e.Solve(jobs[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := e.BatchSolve(jobs)
		if br.Stats.Errors != 0 {
			b.Fatalf("batch errors: %+v", br.Stats)
		}
	}
	b.StopTimer()
	s := e.Stats()
	if s.Factorizations != 1 {
		b.Fatalf("factorizations = %d, want 1", s.Factorizations)
	}
	b.ReportMetric(float64(s.FactorHits), "factor-hits")
}
