package morestress

import (
	"repro/internal/mobility"
)

// Mobility / keep-out-zone analysis: the downstream use of TSV stress maps
// in the paper's motivating references (stress-aware mobility and KOZ,
// [Jung DAC'12/CACM'14]).
type (
	// Carrier selects NMOS or PMOS piezoresistance.
	Carrier = mobility.Carrier
	// PiezoCoefficients holds piezoresistance coefficients (1/MPa).
	PiezoCoefficients = mobility.Coefficients
	// KOZResult reports a keep-out-zone analysis.
	KOZResult = mobility.KOZResult
)

// Carrier kinds.
const (
	NMOS = mobility.NMOS
	PMOS = mobility.PMOS
)

// StandardPiezo returns the standard (001)/<110> silicon piezoresistance
// coefficients for the carrier.
func StandardPiezo(c Carrier) PiezoCoefficients { return mobility.StandardCoefficients(c) }

// MobilityShiftField samples the worst-orientation mobility shift Δµ/µ on
// the mid-plane over block (row, col) of a solved array with gs×gs points.
func (r *ArrayResult) MobilityShiftField(row, col, gs int, coeff PiezoCoefficients) *Field {
	pitch := r.Solution.Prob.ROM.Spec.Geom.Pitch
	zMid := r.Solution.Prob.ROM.Spec.Geom.Height / 2
	return mobility.ShiftField(gs, gs, coeff, func(ix, iy int) [6]float64 {
		x := float64(col)*pitch + (float64(ix)+0.5)*pitch/float64(gs)
		y := float64(row)*pitch + (float64(iy)+0.5)*pitch/float64(gs)
		return r.StressAt(Vec3{X: x, Y: y, Z: zMid})
	})
}

// KOZ computes the keep-out radius of block (row, col): the largest radius
// around the via where |Δµ/µ| exceeds the threshold.
func (r *ArrayResult) KOZ(row, col, gs int, coeff PiezoCoefficients, threshold float64) KOZResult {
	shift := r.MobilityShiftField(row, col, gs, coeff)
	return mobility.KOZ(shift, r.Solution.Prob.ROM.Spec.Geom.Pitch, threshold)
}
