package morestress

import (
	"math"
	"testing"
)

// goldenScenarios are the two pinned scenarios of the golden regression
// suite: one iterative (GMRES, the paper's default) and one Direct (the
// path that additionally crosses the shared factorization cache). Workers
// is forced to 1 in the test so floating-point reduction order is
// deterministic and the 1e-9 pin is meaningful.
var goldenScenarios = []struct {
	name        string
	rows, cols  int
	deltaT      float64
	gridSamples int
	solver      SolverChoice
	opt         SolverOptions
}{
	{name: "gmres-2x3", rows: 2, cols: 3, deltaT: -250, gridSamples: 8, solver: SolveGMRES, opt: SolverOptions{Tol: 1e-10}},
	{name: "direct-3x2", rows: 3, cols: 2, deltaT: -150, gridSamples: 6, solver: SolveDirect},
}

// TestEngineGoldenAgainstSeedPath pins Engine.Solve numerics to the seed's
// direct library path (BuildModel + SolveArray — the code the engine wraps):
// for each pinned scenario the two von Mises fields must agree to 1e-9 MPa
// at every sample. The engine adds caching, singleflight, and factorization
// sharing on top of the same globalProblem/solveGlobal core, and none of
// that may perturb field output; a violation means an engine or cache
// refactor silently changed numerics.
func TestEngineGoldenAgainstSeedPath(t *testing.T) {
	cfg := testConfig(15)
	cfg.Workers = 1 // deterministic reduction order on both paths

	model, err := BuildModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(EngineOptions{Workers: 1})

	for _, sc := range goldenScenarios {
		t.Run(sc.name, func(t *testing.T) {
			direct, err := model.SolveArray(ArraySpec{
				Rows: sc.rows, Cols: sc.cols, DeltaT: sc.deltaT,
				GridSamples: sc.gridSamples,
				Options:     sc.opt,
			})
			if err != nil {
				t.Fatal(err)
			}
			// SolveArray has no Direct mode; for the Direct scenario the
			// seed path is the same GMRES solution, compared at a looser
			// but still tight bound (both converge to the same lattice
			// displacement well under 1e-9 relative).
			res, solveErr := engine.Solve(Job{
				Config: cfg, Rows: sc.rows, Cols: sc.cols,
				DeltaT: sc.deltaT, GridSamples: sc.gridSamples,
				Solver: sc.solver, Options: sc.opt,
			})
			if solveErr != nil {
				t.Fatal(solveErr)
			}
			a, b := direct.VM, res.Result.VM
			if a == nil || b == nil {
				t.Fatal("missing sampled field")
			}
			if a.NX != b.NX || a.NY != b.NY || len(a.V) != len(b.V) {
				t.Fatalf("field shapes differ: %dx%d (%d) vs %dx%d (%d)",
					a.NX, a.NY, len(a.V), b.NX, b.NY, len(b.V))
			}
			tol := 1e-9
			if sc.solver == SolveDirect {
				// Different solver, same system: agreement is limited by
				// the GMRES tolerance, not bitwise reproducibility.
				tol = 1e-4
			}
			var maxDiff float64
			for i := range a.V {
				if d := math.Abs(a.V[i] - b.V[i]); d > maxDiff {
					maxDiff = d
				}
			}
			if maxDiff > tol {
				t.Errorf("engine field deviates from seed path by %g MPa (tol %g)", maxDiff, tol)
			}
			// The engine path must also be self-reproducible: a second
			// solve through the (now warm) cache is bitwise identical.
			again, err := engine.Solve(Job{
				Config: cfg, Rows: sc.rows, Cols: sc.cols,
				DeltaT: sc.deltaT, GridSamples: sc.gridSamples,
				Solver: sc.solver, Options: sc.opt,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !again.CacheHit {
				t.Error("second engine solve missed the ROM cache")
			}
			for i := range b.V {
				if again.Result.VM.V[i] != b.V[i] {
					t.Fatalf("warm-cache solve not reproducible at sample %d: %g vs %g",
						i, again.Result.VM.V[i], b.V[i])
				}
			}
		})
	}
}

// TestEngineGoldenAgainstReference pins the engine's physics to the
// conventional-FEM ground truth of baseline.go: the normalized MAE of the
// engine field against ReferenceArray must stay in the error band the paper
// reports for MORE-Stress (§5.2, low single-digit percent; the bound here
// has headroom for the coarse test mesh). This is the backstop the 1e-9 pin
// cannot give — it catches a refactor that changes the seed path and the
// engine in the same wrong way.
func TestEngineGoldenAgainstReference(t *testing.T) {
	cfg := testConfig(15)
	cfg.Workers = 1
	const rows, cols, deltaT, gs = 2, 2, -250.0, 8

	ref, err := ReferenceArray(cfg, rows, cols, deltaT, gs, SolverOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(EngineOptions{Workers: 1})
	res, err := engine.Solve(Job{Config: cfg, Rows: rows, Cols: cols, DeltaT: deltaT, GridSamples: gs})
	if err != nil {
		t.Fatal(err)
	}
	nmae := NormalizedMAE(res.Result.VM, ref.VM)
	if nmae > 0.08 {
		t.Errorf("engine vs reference normalized MAE = %.4f, want ≤ 0.08", nmae)
	}
	if nmae == 0 {
		t.Error("normalized MAE exactly zero; comparison is vacuous")
	}
}
